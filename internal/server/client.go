package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"iflex/internal/compact"
	"iflex/internal/engine"
)

// Client is a thin JSON client for the service, used by the serve
// benchmark harness, the smoke job, and the identity tests.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
}

// NewClient builds a client for a base URL using http.DefaultClient.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

// apiError is a non-2xx response, preserving the status code so callers
// can distinguish quota refusals (429) from drain refusals (503).
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return fmt.Sprintf("server: %d: %s", e.Status, e.Msg) }

// StatusCode returns err's HTTP status when it is a server refusal, or 0.
func StatusCode(err error) int {
	if ae, ok := err.(*apiError); ok {
		return ae.Status
	}
	return 0
}

// do issues one JSON request; out may be nil for empty responses.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession opens a session.
func (c *Client) CreateSession(req CreateSessionRequest) (CreateSessionResponse, error) {
	var out CreateSessionResponse
	err := c.do("POST", "/v1/sessions", req, &out)
	return out, err
}

// Step answers the previous questions and runs one iteration.
func (c *Client) Step(id string, req StepRequest) (StepResponse, error) {
	var out StepResponse
	err := c.do("POST", "/v1/sessions/"+id+"/step", req, &out)
	return out, err
}

// Corpus commits a store mutation through a session and returns the
// delta plus the incremental re-evaluation's reuse counters.
func (c *Client) Corpus(id string, req CorpusRequest) (CorpusResponse, error) {
	var out CorpusResponse
	err := c.do("POST", "/v1/sessions/"+id+"/corpus", req, &out)
	return out, err
}

// Info fetches the session's lifecycle view.
func (c *Client) Info(id string) (SessionInfo, error) {
	var out SessionInfo
	err := c.do("GET", "/v1/sessions/"+id, nil, &out)
	return out, err
}

// Delete drops a session.
func (c *Client) Delete(id string) error {
	return c.do("DELETE", "/v1/sessions/"+id, nil, nil)
}

// Healthz returns the health status string ("ok" or "draining").
func (c *Client) Healthz() (string, error) {
	var out map[string]string
	if err := c.do("GET", "/healthz", nil, &out); err != nil {
		return "", err
	}
	return out["status"], nil
}

// Stats fetches the per-tenant aggregate view.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do("GET", "/v1/stats", nil, &out)
	return out, err
}

// StreamedResult is the parsed NDJSON result stream.
type StreamedResult struct {
	Cols           []string
	Rows           []string // one compact tuple per entry, Table.String rendering
	CompactTuples  int
	ExpandedTuples int
	Converged      bool
	QuestionsAsked int
	Iterations     int
	Degraded       *compact.Degraded
	DegradedLine   string
	Stats          *engine.StatsSnapshot
	Explain        string
}

// TableString reassembles the result exactly as compact.Table.String
// renders the library-path table — the byte-identity contract the server
// tests pin.
func (r *StreamedResult) TableString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s)\n", strings.Join(r.Cols, ", "))
	for _, row := range r.Rows {
		b.WriteString("  " + row + "\n")
	}
	return b.String()
}

// Result finalizes the session (first call) and streams the result.
// explain asks for the EXPLAIN trace (needs trace=true at create);
// deadlineMS bounds the finalize execution.
func (c *Client) Result(id string, explain bool, deadlineMS int64) (*StreamedResult, error) {
	path := "/v1/sessions/" + id + "/result"
	sep := "?"
	if explain {
		path += sep + "explain=1"
		sep = "&"
	}
	if deadlineMS > 0 {
		path += fmt.Sprintf("%sdeadline_ms=%d", sep, deadlineMS)
	}
	req, err := http.NewRequest("GET", c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &apiError{Status: resp.StatusCode, Msg: msg}
	}
	out := &StreamedResult{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	ended := false
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("server: bad stream line %q: %w", sc.Text(), err)
		}
		switch line.Type {
		case "header":
			out.Cols = line.Cols
			out.CompactTuples = line.CompactTuples
			out.ExpandedTuples = line.ExpandedTuples
			if line.Converged != nil {
				out.Converged = *line.Converged
			}
			out.QuestionsAsked = line.QuestionsAsked
			out.Iterations = line.Iterations
		case "row":
			out.Rows = append(out.Rows, line.Row)
		case "degraded":
			out.Degraded = line.Degraded
			out.DegradedLine = line.Summary
		case "stats":
			out.Stats = line.Stats
		case "explain":
			out.Explain = line.Text
		case "end":
			ended = true
		default:
			return nil, fmt.Errorf("server: unknown stream line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !ended {
		return nil, fmt.Errorf("server: result stream truncated (no end line)")
	}
	return out, nil
}
