package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iflex/internal/assistant"
)

// session is one hosted refinement session. mu serializes steps: the
// library session is single-threaded by contract, so concurrent step
// requests for the same session queue behind each other while sessions of
// different tenants (or the same tenant) run fully in parallel on their
// own engine contexts.
type session struct {
	id     string
	tenant string

	mu sync.Mutex // guards s, res, pending, iterations, questionsAsked
	s  *assistant.Session
	// res is set once the session is finalized; pending mirrors the
	// questions returned by the last step (also available as s.Pending,
	// kept here so Info can read it without the session lock discipline
	// leaking).
	res            *assistant.Result
	done           bool
	iterations     int
	questionsAsked int

	workers     int
	cacheBudget int64
	created     time.Time
	lastUsed    atomic.Int64 // unix nanos; read by the sweeper without mu

	// storeName/storePred are set for store-backed sessions: the mounted
	// store the session evaluates over and the extensional predicate its
	// pages bind to. The corpus endpoint uses them to refresh every
	// session sharing a mutated store.
	storeName string
	storePred string
}

func (s *session) touch()           { s.lastUsed.Store(time.Now().UnixNano()) }
func (s *session) lastUsedAt() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// state reports the lifecycle phase; callers hold s.mu.
func (s *session) state() string {
	switch {
	case s.res != nil:
		return "finalized"
	case s.done:
		return "done"
	default:
		return "active"
	}
}

// tenantState tracks one tenant's resource accounting: live session count,
// reuse-cache bytes allocated against the tenant pool, and aggregate step
// telemetry for GET /v1/stats.
type tenantState struct {
	sessions   int
	cacheBytes int64

	steps           int64
	stepNs          int64
	nodesEvaluated  int64
	poolMaxExtra    int64
	sessionsCreated int64
	sessionsEvicted int64
}

// registry owns the session table and tenant accounting. One mutex guards
// both: every operation on it is O(sessions) metadata work, never an
// evaluation, so the registry is never held across a step.
type registry struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	tenants  map[string]*tenantState
	nextID   int
}

func newRegistry(cfg Config) *registry {
	return &registry{cfg: cfg, sessions: map[string]*session{}, tenants: map[string]*tenantState{}}
}

// quotaErr is a capacity refusal, mapped to HTTP 429.
type quotaErr struct{ msg string }

func (e quotaErr) Error() string { return e.msg }

// admit reserves capacity for a new session: global cap, per-tenant cap,
// and a cache-budget allocation from the tenant's byte pool. It returns
// the granted workers and cache budget. The reservation is released by
// remove (or by the caller on a failed create via release).
func (r *registry) admit(tenant string, wantWorkers int, wantCache int64) (workers int, cache int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.sessions) >= r.cfg.MaxSessions {
		return 0, 0, quotaErr{fmt.Sprintf("server at capacity (%d sessions)", r.cfg.MaxSessions)}
	}
	ts := r.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		r.tenants[tenant] = ts
	}
	if ts.sessions >= r.cfg.MaxSessionsPerTenant {
		return 0, 0, quotaErr{fmt.Sprintf("tenant %q at capacity (%d sessions)", tenant, r.cfg.MaxSessionsPerTenant)}
	}
	// Workers: clamp the request to the tenant's machine share. Zero asks
	// for the full share.
	workers = r.cfg.TenantWorkers
	if wantWorkers > 0 && wantWorkers < workers {
		workers = wantWorkers
	}
	// Cache budget: allocate from the tenant's byte pool. Zero asks for an
	// equal per-session share; a pool of zero means unlimited (budget 0).
	cache = wantCache
	if pool := r.cfg.TenantCacheBudget; pool > 0 {
		if cache == 0 {
			cache = pool / int64(r.cfg.MaxSessionsPerTenant)
		}
		if ts.cacheBytes+cache > pool {
			return 0, 0, quotaErr{fmt.Sprintf("tenant %q cache budget exhausted (%d of %d bytes allocated)",
				tenant, ts.cacheBytes, pool)}
		}
		ts.cacheBytes += cache
	}
	ts.sessions++
	ts.sessionsCreated++
	return workers, cache, nil
}

// release undoes an admit reservation for a create that failed after
// admission (bad program, unknown task, ...).
func (r *registry) release(tenant string, cache int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ts := r.tenants[tenant]; ts != nil {
		ts.sessions--
		ts.sessionsCreated--
		ts.cacheBytes -= cache
	}
}

// add registers an admitted session and assigns its ID.
func (r *registry) add(s *session) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	s.id = fmt.Sprintf("s%d", r.nextID)
	r.sessions[s.id] = s
	return s.id
}

func (r *registry) get(id string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions[id]
}

// byStore returns the sessions backed by a named store, sorted by id so
// the corpus endpoint locks them in a deterministic order.
func (r *registry) byStore(name string) []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*session
	for _, s := range r.sessions {
		if s.storeName == name {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// remove drops a session and returns its resources to the tenant.
// evicted marks TTL eviction (vs explicit delete) in the tenant stats.
func (r *registry) remove(id string, evicted bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sessions[id]
	if s == nil {
		return false
	}
	delete(r.sessions, id)
	if ts := r.tenants[s.tenant]; ts != nil {
		ts.sessions--
		ts.cacheBytes -= s.cacheBudget
		if evicted {
			ts.sessionsEvicted++
		}
	}
	return true
}

// recordStep folds one finished step into the tenant telemetry: wall
// time, the step's fresh-evaluation delta, and the session context's pool
// high-water mark (the tenant's peak machine share so far).
func (r *registry) recordStep(tenant string, wall time.Duration, evals, poolMax int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := r.tenants[tenant]
	if ts == nil {
		return
	}
	ts.steps++
	ts.stepNs += wall.Nanoseconds()
	ts.nodesEvaluated += evals
	if poolMax > ts.poolMaxExtra {
		ts.poolMaxExtra = poolMax
	}
}

// expired returns the sessions idle past the TTL. The caller evicts them
// one by one under their own locks.
func (r *registry) expired(ttl time.Duration) []*session {
	cutoff := time.Now().Add(-ttl)
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*session
	for _, s := range r.sessions {
		if s.lastUsedAt().Before(cutoff) {
			out = append(out, s)
		}
	}
	return out
}

// stats renders the per-tenant aggregate view.
func (r *registry) stats(draining bool) StatsResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	resp := StatsResponse{Draining: draining, Sessions: len(r.sessions), Tenants: map[string]TenantStats{}}
	for name, ts := range r.tenants {
		resp.Tenants[name] = TenantStats{
			Sessions:        ts.sessions,
			CacheBytes:      ts.cacheBytes,
			Steps:           ts.steps,
			StepSeconds:     float64(ts.stepNs) / 1e9,
			NodesEvaluated:  ts.nodesEvaluated,
			PoolMaxExtra:    ts.poolMaxExtra,
			SessionsCreated: ts.sessionsCreated,
			SessionsEvicted: ts.sessionsEvicted,
		}
	}
	return resp
}
