package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
	"iflex/internal/engine"
	"iflex/internal/markup"
	"iflex/internal/store"
	"iflex/internal/text"
)

// Config tunes the service. Zero values select the defaults.
type Config struct {
	// MaxSessions caps live sessions across all tenants (default 64).
	MaxSessions int
	// MaxSessionsPerTenant caps one tenant's live sessions (default 8).
	MaxSessionsPerTenant int
	// TenantWorkers is each tenant's worker-pool share: every session's
	// Workers is clamped to it (default GOMAXPROCS). With T active tenants
	// the machine is oversubscribed at most T-fold — the engine pool never
	// blocks on a slot, so oversubscription degrades latency, not
	// correctness.
	TenantWorkers int
	// TenantCacheBudget is each tenant's reuse-cache byte pool; sessions
	// allocate their CacheBudget from it and creation fails with 429 when
	// the pool is exhausted (0 = unlimited, sessions default to no budget).
	TenantCacheBudget int64
	// SessionTTL evicts sessions idle this long (default 15m).
	SessionTTL time.Duration
	// SweepInterval is the eviction scan cadence (default 1m).
	SweepInterval time.Duration
	// Stores are named document stores (opened at startup, e.g. from
	// iflexd -store name=dir) that sessions reference by name instead of
	// shipping a corpus inline: every session over the same store shares
	// one handle, its lazily-materialized pages, and its persistent
	// inverted token index.
	Stores map[string]*store.DiskStore
	// DefaultStepDeadline applies when a step request carries no
	// deadline_ms (default 0 = none).
	DefaultStepDeadline time.Duration
	// MaxStepDeadline clamps requested per-step deadlines (default 30s).
	MaxStepDeadline time.Duration
	// MaxRequestBytes caps a JSON request body (default 8 MiB; negative =
	// unlimited). Oversized bodies get 413 before the decoder buffers
	// them — inline corpora and page mutations are the only large inputs,
	// and a malicious body should not be able to balloon the heap.
	MaxRequestBytes int64
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxSessionsPerTenant == 0 {
		c.MaxSessionsPerTenant = 8
	}
	if c.TenantWorkers == 0 {
		c.TenantWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Minute
	}
	if c.MaxStepDeadline == 0 {
		c.MaxStepDeadline = 30 * time.Second
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the multi-tenant extraction service. Create one with New,
// mount Handler on an http.Server, and call Close (directly or through a
// drain sequence) when done so the sweeper goroutine exits.
type Server struct {
	cfg      Config
	reg      *registry
	mux      *http.ServeMux
	draining atomic.Bool
	// storeMu serializes mutations of each mounted store against session
	// creation over it (a corpus commit rewrites the store's live view,
	// which buildSession reads). Sessions mid-evaluation are quiesced
	// separately: the corpus handler holds every backed session's lock
	// across the commit.
	storeMu map[string]*sync.Mutex
	// inflight gauges write-path requests currently inside a handler, so
	// a drain sequence (and GET /v1/stats) can watch work quiesce.
	inflight atomic.Int64

	closeOnce sync.Once
	stop      chan struct{}
	swept     chan struct{} // closed when the sweeper goroutine exits
}

// New builds a server and starts its TTL sweeper.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     newRegistry(cfg),
		mux:     http.NewServeMux(),
		storeMu: map[string]*sync.Mutex{},
		stop:    make(chan struct{}),
		swept:   make(chan struct{}),
	}
	for name := range cfg.Stores {
		s.storeMu[name] = &sync.Mutex{}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/sessions", s.gated(s.handleCreate))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.gated(s.handleStep))
	s.mux.HandleFunc("POST /v1/sessions/{id}/corpus", s.gated(s.handleCorpus))
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.gated(s.handleResult))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	go s.sweep()
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain flips the server into drain mode: new sessions, steps, and result
// streams get 503 while requests already inside a handler run to
// completion (connection-level waiting is http.Server.Shutdown's job).
// Read-only endpoints stay up so orchestrators can watch the drain.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		s.cfg.Logf("draining: refusing new work")
	}
}

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the TTL sweeper and waits for it to exit. It does not wait
// for in-flight HTTP requests — pair it with http.Server.Shutdown.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.swept
}

// sweep evicts idle sessions until Close.
func (s *Server) sweep() {
	defer close(s.swept)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for _, sess := range s.reg.expired(s.cfg.SessionTTL) {
				// A session mid-step is busy, not idle: skip it and let the
				// next sweep reconsider after the step bumped lastUsed.
				if !sess.mu.TryLock() {
					continue
				}
				if s.reg.remove(sess.id, true) {
					s.cfg.Logf("evicted idle session %s (tenant %s)", sess.id, sess.tenant)
				}
				sess.mu.Unlock()
			}
		}
	}
}

// gated wraps write-path handlers with the drain check.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeBody decodes a JSON request body bounded at MaxRequestBytes,
// writing the error response (413 for an oversized body, 400 otherwise)
// itself; it reports whether decoding succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.cfg.MaxRequestBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := s.reg.stats(s.draining.Load())
	resp.InFlight = s.inflight.Load()
	writeJSON(w, http.StatusOK, resp)
}

// candidateOracle backs server-driven sessions: Answer is never consulted
// (answers arrive over HTTP), but the simulation strategy still needs
// Candidates to bound parametric answer domains.
type candidateOracle struct {
	candidates map[string]map[string][]string
}

func (o candidateOracle) Answer(assistant.Question) assistant.Answer { return assistant.DontKnow() }

func (o candidateOracle) Candidates(attr alog.AttrRef, featureName string) []string {
	if m, ok := o.candidates[attr.String()]; ok {
		return m[featureName]
	}
	return nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Tenant == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("tenant is required"))
		return
	}
	corpora := 0
	for _, given := range []bool{req.Task != "", len(req.Docs) > 0, req.Store != ""} {
		if given {
			corpora++
		}
	}
	if corpora != 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("exactly one of task, docs, or store is required"))
		return
	}

	workers, cache, err := s.reg.admit(req.Tenant, req.Workers, req.CacheBudgetBytes)
	if err != nil {
		if _, ok := err.(quotaErr); ok {
			writeErr(w, http.StatusTooManyRequests, err)
		} else {
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}

	sess, err := s.buildSession(req, workers, cache)
	if err != nil {
		s.reg.release(req.Tenant, cache)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id := s.reg.add(sess)
	s.cfg.Logf("created session %s (tenant %s, workers %d, cache %d)", id, req.Tenant, workers, cache)
	writeJSON(w, http.StatusCreated, CreateSessionResponse{
		ID: id, Tenant: req.Tenant, Workers: workers, CacheBudgetBytes: cache,
	})
}

// buildSession assembles the library session for a create request.
func (s *Server) buildSession(req CreateSessionRequest, workers int, cache int64) (*session, error) {
	var (
		env       *engine.Env
		oracle    assistant.Oracle
		storePred string
	)
	progSrc := req.Program
	if req.Store != "" {
		st := s.cfg.Stores[req.Store]
		if st == nil {
			return nil, fmt.Errorf("no store named %q is mounted on this server", req.Store)
		}
		if progSrc == "" {
			return nil, fmt.Errorf("program is required with a store corpus")
		}
		pred := req.StorePred
		if pred == "" {
			pred = "docs"
		}
		env = engine.NewEnv()
		// The store mutex excludes a concurrent corpus commit from
		// rewriting the live view while this session snapshots it.
		mu := s.storeMu[req.Store]
		mu.Lock()
		env.AddDocTable(pred, "x", st.Docs())
		mu.Unlock()
		storePred = pred
		// Token prefilters and join blocking are served by the store's
		// persistent inverted index; pages materialize lazily, so the
		// session references the store handle, not a resident corpus.
		env.DocIndex = st
		env.Postings = st
		oracle = candidateOracle{candidates: req.Candidates}
	} else if req.Task != "" {
		task, err := corpus.TaskByID(req.Task)
		if err != nil {
			return nil, err
		}
		records := req.Records
		if records == 0 {
			records = 12
		}
		c := task.Generate(records, req.Seed)
		env = task.Env(c)
		oracle = task.Oracle()
		if progSrc == "" {
			progSrc = task.Program
		}
	} else {
		if progSrc == "" {
			return nil, fmt.Errorf("program is required with inline docs")
		}
		env = engine.NewEnv()
		for pred, docs := range req.Docs {
			parsed := make([]*text.Document, 0, len(docs))
			for _, d := range docs {
				doc, err := markup.Parse(d.ID, d.HTML)
				if err != nil {
					return nil, fmt.Errorf("parsing doc %q of %s: %w", d.ID, pred, err)
				}
				parsed = append(parsed, doc)
			}
			env.AddDocTable(pred, "x", parsed)
		}
		oracle = candidateOracle{candidates: req.Candidates}
	}

	prog, err := alog.Parse(progSrc)
	if err != nil {
		return nil, fmt.Errorf("parsing program: %w", err)
	}
	strategy := req.Strategy
	if strategy == "" {
		strategy = "seq"
	}
	strat, err := assistant.ByName(strategy)
	if err != nil {
		return nil, err
	}
	lib := assistant.NewSession(env, prog, oracle, assistant.Config{
		Strategy:              strat,
		Alpha:                 req.Alpha,
		ConvergenceWindow:     req.ConvergenceWindow,
		QuestionsPerIteration: req.QuestionsPerIteration,
		MaxIterations:         req.MaxIterations,
		SubsetSeed:            req.SubsetSeed,
		Workers:               workers,
		CacheBudget:           cache,
		Trace:                 req.Trace,
	})
	sess := &session{
		tenant:      req.Tenant,
		s:           lib,
		workers:     workers,
		cacheBudget: cache,
		created:     time.Now(),
		storeName:   req.Store,
		storePred:   storePred,
	}
	sess.touch()
	return sess, nil
}

// stepDeadline resolves a request's deadline against the server's default
// and clamp.
func (s *Server) stepDeadline(ms int64) time.Duration {
	d := s.cfg.DefaultStepDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxStepDeadline {
		d = s.cfg.MaxStepDeadline
	}
	return d
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	var req StepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	answers := make([]assistant.Answer, len(req.Answers))
	for i, a := range req.Answers {
		if a.Known {
			answers[i] = assistant.Know(a.Value)
		} else {
			answers[i] = assistant.DontKnow()
		}
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	if sess.res != nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("session is finalized"))
		return
	}
	start := time.Now()
	sr, err := sess.s.StepDeadline(s.stepDeadline(req.DeadlineMS), answers)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess.touch()
	sess.done = sr.Done
	sess.iterations = sr.Iteration.N
	sess.questionsAsked += len(req.Answers)
	s.reg.recordStep(sess.tenant, time.Since(start), sr.Iteration.Evals, sess.s.StatsSnapshot().PoolMaxExtra)

	resp := StepResponse{
		Iteration: iterationJSON(sr.Iteration),
		Converged: sr.Converged,
		Done:      sr.Done,
		Degraded:  sr.Degraded,
	}
	for _, q := range sr.Questions {
		resp.Questions = append(resp.Questions, questionJSON(q))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCorpus is the watch/ingest path: it mutates the addressed
// session's mounted store (put pages — add or supersede by id — and
// remove pages), folds the committed delta into every session backed by
// that store, and incrementally re-evaluates the addressed session's
// current program over the full mutated corpus. The response carries the
// delta, the store generation, and the re-evaluation's reuse counters;
// the result table is streamed by GET result as usual (a finalized
// session's cached result is swapped for the live one).
func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	var req CorpusRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if sess.storeName == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("session is not store-backed"))
		return
	}
	if len(req.Put)+len(req.Remove) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty mutation"))
		return
	}
	st := s.cfg.Stores[sess.storeName]
	mu := s.storeMu[sess.storeName]
	mu.Lock()
	defer mu.Unlock()

	// Quiesce every session over this store: the commit rewrites the live
	// document view their evaluations read through, and each needs the
	// delta folded in before its next step. Locks are taken in id order
	// (byStore sorts) and the store mutex serializes concurrent corpus
	// posts, so the ordering cannot deadlock.
	backed := s.reg.byStore(sess.storeName)
	found := false
	for _, b := range backed {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b == sess {
			found = true
		}
	}
	if !found {
		// Deleted between get and byStore.
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	sess.touch()

	m, err := st.BeginMutation()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// Staging failures happen before anything reaches disk, so an
	// abandoned mutation leaves the store untouched.
	for _, d := range req.Put {
		if err := m.Put(d.ID, d.HTML); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	for _, id := range req.Remove {
		if err := m.Remove(id); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	delta, err := m.Commit()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}

	cd := &engine.CorpusDelta{Added: delta.Added, Updated: delta.Updated, Removed: delta.Removed}
	for _, b := range backed {
		pred := b.storePred
		b.s.ApplyCorpusDelta(cd, func(env *engine.Env) {
			env.AddDocTable(pred, "x", st.Docs())
		})
	}

	// Re-evaluate the addressed session (its counters are the response)
	// and every finalized sibling — a finalized session keeps serving its
	// cached result, so the cached table is swapped for the live one.
	// Active siblings re-execute incrementally on their own next step.
	var up *assistant.LiveUpdate
	for _, b := range backed {
		if b != sess && b.res == nil {
			continue
		}
		u, err := b.s.Reevaluate(s.stepDeadline(req.DeadlineMS))
		if err != nil {
			if b == sess {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			s.cfg.Logf("corpus delta: re-evaluating session %s: %v", b.id, err)
			continue
		}
		if b.res != nil {
			b.res.Final = u.Final
			b.res.FinalTuples = u.FinalTuples
			b.res.Degraded = u.Final.Degraded
		}
		if b == sess {
			up = u
		}
	}
	s.cfg.Logf("corpus delta on store %q via session %s: +%d ~%d -%d (gen %d, %d sessions refreshed)",
		sess.storeName, sess.id, len(delta.Added), len(delta.Updated), len(delta.Removed),
		st.Generation(), len(backed))
	writeJSON(w, http.StatusOK, CorpusResponse{
		Added: delta.Added, Updated: delta.Updated, Removed: delta.Removed,
		Generation:        st.Generation(),
		SessionsRefreshed: len(backed),
		Tuples:            up.FinalTuples,
		TuplesReused:      up.TuplesReused,
		TuplesRecomputed:  up.TuplesRecomputed,
		CorpusPriorHits:   up.CorpusPriorHits,
		WallS:             up.WallS,
	})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	sess.mu.Lock()
	info := SessionInfo{
		ID: sess.id, Tenant: sess.tenant, State: sess.state(),
		Iterations: sess.iterations, QuestionsAsked: sess.questionsAsked,
		Workers: sess.workers, CacheBudgetBytes: sess.cacheBudget,
		Created: sess.created, LastUsed: sess.lastUsedAt(),
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.reg.get(id)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	// Wait out an in-flight step so the engine context is quiescent when
	// the session is dropped.
	sess.mu.Lock()
	removed := s.reg.remove(id, false)
	sess.mu.Unlock()
	if !removed {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	s.cfg.Logf("deleted session %s (tenant %s)", id, sess.tenant)
	w.WriteHeader(http.StatusNoContent)
}

// handleResult finalizes the session (once) and streams the result as
// NDJSON: header, one line per compact tuple (rendered exactly as
// compact.Table.String does), the degradation report, an engine stats
// snapshot, optionally an EXPLAIN trace (?explain=1, needs trace=true at
// create), and a terminating end line.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess := s.reg.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	var deadlineMS int64
	if v := r.URL.Query().Get("deadline_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad deadline_ms: %w", err))
			return
		}
		deadlineMS = ms
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	if sess.res == nil {
		res, err := sess.s.Finalize(s.stepDeadline(deadlineMS))
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		sess.res = res
	}
	res := sess.res

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	converged := res.Converged
	_ = enc.Encode(StreamLine{
		Type: "header", Cols: res.Final.Cols,
		CompactTuples: len(res.Final.Tuples), ExpandedTuples: res.FinalTuples,
		Converged: &converged, QuestionsAsked: res.QuestionsAsked,
		Iterations: len(res.Iterations),
	})
	flush()
	for _, tp := range res.Final.Tuples {
		_ = enc.Encode(StreamLine{Type: "row", Row: tp.String()})
	}
	if res.Degraded != nil {
		_ = enc.Encode(StreamLine{Type: "degraded", Degraded: res.Degraded, Summary: res.Degraded.Summary()})
	}
	snap := sess.s.StatsSnapshot()
	_ = enc.Encode(StreamLine{Type: "stats", Stats: &snap})
	if r.URL.Query().Get("explain") == "1" {
		txt, err := sess.s.Explain()
		if err != nil {
			txt = "explain unavailable: " + err.Error()
		}
		_ = enc.Encode(StreamLine{Type: "explain", Text: txt})
	}
	_ = enc.Encode(StreamLine{Type: "end"})
	flush()
}
