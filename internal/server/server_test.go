package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
	"iflex/internal/engine"
	"iflex/internal/markup"
	"iflex/internal/store"
	"iflex/internal/text"
)

// newTestServer boots a server on an httptest listener and returns a
// client plus a shutdown func.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	c := NewClient(hs.URL)
	return srv, c, func() {
		hs.Close()
		srv.Close()
	}
}

// driveSession steps a server session to completion, answering questions
// with the oracle, and returns the streamed result.
func driveSession(t *testing.T, c *Client, id string, o *assistant.MapOracle, explain bool) *StreamedResult {
	t.Helper()
	var answers []AnswerJSON
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("server session did not terminate")
		}
		sr, err := c.Step(id, StepRequest{Answers: answers})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if sr.Done {
			break
		}
		answers = answers[:0]
		for _, qj := range sr.Questions {
			q, err := ParseQuestion(qj)
			if err != nil {
				t.Fatal(err)
			}
			ans := o.Answer(q)
			answers = append(answers, AnswerJSON{Value: ans.Value, Known: ans.Known})
		}
	}
	res, err := c.Result(id, explain, 0)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return res
}

// libraryReference runs the same scenario through the library path.
func libraryReference(t *testing.T, taskID string, records int, seed int64, cfg assistant.Config) *assistant.Result {
	t.Helper()
	task, err := corpus.TaskByID(taskID)
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(records, seed)
	s := assistant.NewSession(task.Env(c), alog.MustParse(task.Program), task.Oracle(), cfg)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServerMatchesLibrary is the acceptance-criteria identity test: a
// session driven over HTTP with the same seed and answers produces a
// result table byte-identical to the library path, for both strategies.
func TestServerMatchesLibrary(t *testing.T) {
	const records, seed = 12, int64(1)
	for _, tc := range []struct {
		task, strategy string
	}{
		{"T1", "seq"},
		{"T9", "seq"},
		{"T9", "sim"},
	} {
		tc := tc
		t.Run(tc.task+"/"+tc.strategy, func(t *testing.T) {
			_, c, shutdown := newTestServer(t, Config{})
			defer shutdown()

			task, err := corpus.TaskByID(tc.task)
			if err != nil {
				t.Fatal(err)
			}
			created, err := c.CreateSession(CreateSessionRequest{
				Tenant: "acme", Task: tc.task, Records: records, Seed: seed, Strategy: tc.strategy,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := driveSession(t, c, created.ID, task.Oracle(), false)

			strat, err := assistant.ByName(tc.strategy)
			if err != nil {
				t.Fatal(err)
			}
			want := libraryReference(t, tc.task, records, seed, assistant.Config{Strategy: strat})

			if got.TableString() != want.Final.String() {
				t.Errorf("server table differs from library path\nserver:\n%s\nlibrary:\n%s",
					got.TableString(), want.Final.String())
			}
			if got.ExpandedTuples != want.FinalTuples || got.Converged != want.Converged ||
				got.QuestionsAsked != want.QuestionsAsked {
				t.Errorf("server (tuples=%d converged=%v asked=%d) vs library (tuples=%d converged=%v asked=%d)",
					got.ExpandedTuples, got.Converged, got.QuestionsAsked,
					want.FinalTuples, want.Converged, want.QuestionsAsked)
			}
			if got.Stats == nil || got.Stats.NodesEvaluated == 0 {
				t.Error("stream carried no stats snapshot")
			}
		})
	}
}

// TestInlineDocsSession creates a session from inline HTML documents and
// checks it against the same program run directly through the library.
func TestInlineDocsSession(t *testing.T) {
	_, c, shutdown := newTestServer(t, Config{})
	defer shutdown()

	prog := `
T(x, <p>, <s>) :- pages(x), ext(x, p, s), p > 500000.
ext(x, p, s) :- from(x, p), from(x, s), numeric(p) = yes.
`
	page := func(price, school string) string {
		return `House for sale.<br>Price: <i>` + price + `</i><br>School: <b>` + school + `</b>`
	}
	created, err := c.CreateSession(CreateSessionRequest{
		Tenant:  "acme",
		Program: prog,
		Docs: map[string][]Doc{"pages": {
			{ID: "h1", HTML: page("351000", "Vanhise High")},
			{ID: "h2", HTML: page("619000", "Basktall HS")},
			{ID: "h3", HTML: page("725000", "Lincoln High")},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No oracle: answer everything "I do not know" (empty answer lists).
	var res *StreamedResult
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("inline session did not terminate")
		}
		sr, err := c.Step(created.ID, StepRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Done {
			break
		}
	}
	if res, err = c.Result(created.ID, false, 0); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("inline session produced no rows")
	}
	if res.ExpandedTuples == 0 {
		t.Error("inline session produced no expanded tuples")
	}
}

// TestQuotas exercises the capacity refusals: per-tenant session cap,
// global cap, and the tenant cache-byte pool.
func TestQuotas(t *testing.T) {
	_, c, shutdown := newTestServer(t, Config{
		MaxSessions:          3,
		MaxSessionsPerTenant: 2,
		TenantCacheBudget:    1000,
	})
	defer shutdown()

	mk := func(tenant string, cache int64) (CreateSessionResponse, error) {
		return c.CreateSession(CreateSessionRequest{
			Tenant: tenant, Task: "T1", Records: 4, CacheBudgetBytes: cache,
		})
	}
	a1, err := mk("a", 600)
	if err != nil {
		t.Fatal(err)
	}
	if a1.CacheBudgetBytes != 600 {
		t.Errorf("granted cache = %d, want 600", a1.CacheBudgetBytes)
	}
	// Second session would need 600 more from a pool of 1000: refused.
	if _, err := mk("a", 600); StatusCode(err) != http.StatusTooManyRequests {
		t.Errorf("cache-pool exhaustion: err = %v, want 429", err)
	}
	// A smaller request still fits.
	if _, err := mk("a", 300); err != nil {
		t.Fatal(err)
	}
	// Tenant "a" is now at its 2-session cap.
	if _, err := mk("a", 10); StatusCode(err) != http.StatusTooManyRequests {
		t.Errorf("tenant cap: err = %v, want 429", err)
	}
	// Third session overall is fine for tenant b...
	b1, err := mk("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Default allocation is an equal pool share.
	if want := int64(1000 / 2); b1.CacheBudgetBytes != want {
		t.Errorf("default cache share = %d, want %d", b1.CacheBudgetBytes, want)
	}
	// ...but the global cap now refuses tenant c.
	if _, err := mk("c", 0); StatusCode(err) != http.StatusTooManyRequests {
		t.Errorf("global cap: err = %v, want 429", err)
	}
	// Deleting frees capacity.
	if err := c.Delete(b1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := mk("c", 0); err != nil {
		t.Errorf("create after delete: %v", err)
	}
}

// TestTTLEviction checks the idle sweep: an untouched session disappears
// after the TTL and is accounted as evicted.
func TestTTLEviction(t *testing.T) {
	_, c, shutdown := newTestServer(t, Config{
		SessionTTL:    30 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	defer shutdown()

	created, err := c.CreateSession(CreateSessionRequest{Tenant: "a", Task: "T1", Records: 4})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Info(created.ID); StatusCode(err) == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not evicted after TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ts := stats.Tenants["a"]
	if ts.SessionsEvicted != 1 || ts.Sessions != 0 || ts.CacheBytes != 0 {
		t.Errorf("tenant stats after eviction = %+v", ts)
	}
}

// waitGoroutines waits for the goroutine count to settle back to at most
// base+slack, failing the test otherwise.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d+2\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainMidStep drains the server while a step is in flight: the step
// must finish, new work must get 503, health must report draining, and
// after shutdown no goroutines may linger.
func TestDrainMidStep(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, c, shutdown := newTestServer(t, Config{})

	created, err := c.CreateSession(CreateSessionRequest{Tenant: "a", Task: "T9", Records: 12})
	if err != nil {
		t.Fatal(err)
	}
	sess := srv.reg.get(created.ID)

	// Pin the step mid-handler: the test holds the session lock, so the
	// step request passes the drain gate and blocks on the session — the
	// deterministic stand-in for "a step is executing right now".
	sess.mu.Lock()
	stepDone := make(chan error, 1)
	go func() {
		_, err := c.Step(created.ID, StepRequest{})
		stepDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			sess.mu.Unlock()
			t.Fatal("step never entered the handler")
		}
		time.Sleep(time.Millisecond)
	}

	srv.Drain()
	if st, err := c.Healthz(); err != nil || st != "draining" {
		t.Errorf("healthz = %q, %v; want draining", st, err)
	}
	if _, err := c.CreateSession(CreateSessionRequest{Tenant: "b", Task: "T1", Records: 4}); StatusCode(err) != http.StatusServiceUnavailable {
		t.Errorf("create while draining: err = %v, want 503", err)
	}
	if _, err := c.Step(created.ID, StepRequest{}); StatusCode(err) != http.StatusServiceUnavailable {
		t.Errorf("new step while draining: err = %v, want 503", err)
	}
	// Release the session: the in-flight step must run to completion even
	// though the server is draining.
	sess.mu.Unlock()
	if err := <-stepDone; err != nil {
		t.Errorf("in-flight step failed during drain: %v", err)
	}

	shutdown()
	c.HTTP.CloseIdleConnections()
	waitGoroutines(t, base)
}

// TestStepValidation pins the request-shape errors.
func TestStepValidation(t *testing.T) {
	_, c, shutdown := newTestServer(t, Config{})
	defer shutdown()

	if _, err := c.Step("s999", StepRequest{}); StatusCode(err) != http.StatusNotFound {
		t.Errorf("unknown session: err = %v, want 404", err)
	}
	created, err := c.CreateSession(CreateSessionRequest{Tenant: "a", Task: "T1", Records: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Answers with no pending questions.
	if _, err := c.Step(created.ID, StepRequest{Answers: []AnswerJSON{{Known: true, Value: "yes"}}}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("excess answers: err = %v, want 400", err)
	}
	// Bad create requests.
	if _, err := c.CreateSession(CreateSessionRequest{Task: "T1"}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("missing tenant: err = %v, want 400", err)
	}
	if _, err := c.CreateSession(CreateSessionRequest{Tenant: "a"}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("no corpus: err = %v, want 400", err)
	}
	if _, err := c.CreateSession(CreateSessionRequest{Tenant: "a", Task: "T99"}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("unknown task: err = %v, want 400", err)
	}
	// A failed create must not leak the admission reservation.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ts := stats.Tenants["a"]; ts.Sessions != 1 {
		t.Errorf("tenant sessions after failed creates = %d, want 1", ts.Sessions)
	}
}

// TestResultExplain checks the EXPLAIN stream line for traced sessions.
func TestResultExplain(t *testing.T) {
	_, c, shutdown := newTestServer(t, Config{})
	defer shutdown()

	task, err := corpus.TaskByID("T1")
	if err != nil {
		t.Fatal(err)
	}
	created, err := c.CreateSession(CreateSessionRequest{
		Tenant: "a", Task: "T1", Records: 6, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := driveSession(t, c, created.ID, task.Oracle(), true)
	if res.Explain == "" {
		t.Error("traced session streamed no explain text")
	}
	// A second result call replays the finalized result (no re-execution).
	res2, err := c.Result(created.ID, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TableString() != res.TableString() {
		t.Error("second result stream differs from first")
	}
	// Stepping a finalized session is refused.
	if _, err := c.Step(created.ID, StepRequest{}); StatusCode(err) != http.StatusConflict {
		t.Errorf("step after finalize: err = %v, want 409", err)
	}
	info, err := c.Info(created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "finalized" {
		t.Errorf("state = %q, want finalized", info.State)
	}
	_ = fmt.Sprintf("%v", info)
}

// TestStoreBackedSession mounts a sharded document store on the server
// and creates a session referencing it by name: the result must be
// byte-identical to the same program run through the library over an
// eagerly parsed copy of the same pages (no store, no index).
func TestStoreBackedSession(t *testing.T) {
	prog := `
T(x, <p>, <s>) :- docs(x), ext(x, p, s), p > 500000.
ext(x, p, s) :- from(x, p), from(x, s), numeric(p) = yes.
`
	page := func(price, school string) string {
		return `House for sale.<br>Price: <i>` + price + `</i><br>School: <b>` + school + `</b>`
	}
	pages := []struct{ id, html string }{
		{"h1", page("351000", "Vanhise High")},
		{"h2", page("619000", "Basktall HS")},
		{"h3", page("725000", "Lincoln High")},
	}

	dir := t.TempDir()
	w, err := store.Create(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if err := w.Add(p.id, p.html); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	_, c, shutdown := newTestServer(t, Config{Stores: map[string]*store.DiskStore{"houses": st}})
	defer shutdown()

	created, err := c.CreateSession(CreateSessionRequest{
		Tenant: "acme", Store: "houses", Program: prog,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("store-backed session did not terminate")
		}
		sr, err := c.Step(created.ID, StepRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Done {
			break
		}
	}
	res, err := c.Result(created.ID, false, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Library reference over eagerly parsed pages, no store or index.
	env := engine.NewEnv()
	var docs []*text.Document
	for _, p := range pages {
		d, err := markup.Parse(p.id, p.html)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	env.AddDocTable("docs", "x", docs)
	lib := assistant.NewSession(env, alog.MustParse(prog), candidateOracle{}, assistant.Config{})
	want, err := lib.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TableString() != want.Final.String() {
		t.Errorf("store-backed session differs from eager library run\nserver:\n%s\nlibrary:\n%s",
			res.TableString(), want.Final.String())
	}

	// An unknown store name is a 400, not a crash.
	if _, err := c.CreateSession(CreateSessionRequest{
		Tenant: "acme", Store: "nope", Program: prog,
	}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("unknown store: err = %v, want 400", err)
	}
	// A store request without a program is a 400.
	if _, err := c.CreateSession(CreateSessionRequest{
		Tenant: "acme", Store: "houses",
	}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("store without program: err = %v, want 400", err)
	}
	// Naming both a store and a task is a 400 (exactly one corpus).
	if _, err := c.CreateSession(CreateSessionRequest{
		Tenant: "acme", Store: "houses", Task: "T1", Program: prog,
	}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("store+task: err = %v, want 400", err)
	}
}

// TestCorpusEndpoint: the watch/ingest path. A store mutation posted
// through one session must update the shared store, fold the delta into
// every session backed by it, and leave both sessions streaming a result
// byte-identical to an eager library run over the mutated pages.
func TestCorpusEndpoint(t *testing.T) {
	prog := `
T(x, <p>, <s>) :- docs(x), ext(x, p, s), p > 500000.
ext(x, p, s) :- from(x, p), from(x, s), numeric(p) = yes.
`
	page := func(price, school string) string {
		return `House for sale.<br>Price: <i>` + price + `</i><br>School: <b>` + school + `</b>`
	}
	dir := t.TempDir()
	w, err := store.Create(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ id, html string }{
		{"h1", page("351000", "Vanhise High")},
		{"h2", page("619000", "Basktall HS")},
		{"h3", page("725000", "Lincoln High")},
	} {
		if err := w.Add(p.id, p.html); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	_, c, shutdown := newTestServer(t, Config{Stores: map[string]*store.DiskStore{"houses": st}})
	defer shutdown()

	mkSession := func() string {
		t.Helper()
		created, err := c.CreateSession(CreateSessionRequest{
			Tenant: "acme", Store: "houses", Program: prog,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			if i > 200 {
				t.Fatal("session did not terminate")
			}
			sr, err := c.Step(created.ID, StepRequest{})
			if err != nil {
				t.Fatal(err)
			}
			if sr.Done {
				break
			}
		}
		if _, err := c.Result(created.ID, false, 0); err != nil {
			t.Fatal(err)
		}
		return created.ID
	}
	s1, s2 := mkSession(), mkSession()

	resp, err := c.Corpus(s1, CorpusRequest{
		Put: []Doc{
			{ID: "h1", HTML: page("800000", "Vanhise High")},
			{ID: "h4", HTML: page("910000", "Muir Acres")},
		},
		Remove: []string{"h3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Added) != 1 || resp.Added[0] != "h4" ||
		len(resp.Updated) != 1 || resp.Updated[0] != "h1" ||
		len(resp.Removed) != 1 || resp.Removed[0] != "h3" {
		t.Fatalf("delta = +%v ~%v -%v", resp.Added, resp.Updated, resp.Removed)
	}
	if resp.Generation != 1 {
		t.Errorf("generation = %d, want 1", resp.Generation)
	}
	if resp.SessionsRefreshed != 2 {
		t.Errorf("sessions refreshed = %d, want 2", resp.SessionsRefreshed)
	}
	if resp.Tuples == 0 {
		t.Error("re-evaluation produced no tuples")
	}

	// Eager library reference over the mutated pages, in store view order
	// (first-seen position; the removed h3 is gone, h4 appended).
	env := engine.NewEnv()
	var docs []*text.Document
	for _, p := range []struct{ id, html string }{
		{"h1", page("800000", "Vanhise High")},
		{"h2", page("619000", "Basktall HS")},
		{"h4", page("910000", "Muir Acres")},
	} {
		d, err := markup.Parse(p.id, p.html)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	env.AddDocTable("docs", "x", docs)
	lib := assistant.NewSession(env, alog.MustParse(prog), candidateOracle{}, assistant.Config{})
	want, err := lib.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{s1, s2} {
		res, err := c.Result(id, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.TableString() != want.Final.String() {
			t.Errorf("session %s after delta differs from eager run\nserver:\n%s\nlibrary:\n%s",
				id, res.TableString(), want.Final.String())
		}
	}

	// Error paths: a task-backed session has no store (400); an empty
	// mutation is refused (400); removing an unknown id fails staging
	// before anything reaches disk (400); unknown sessions are 404.
	taskSess, err := c.CreateSession(CreateSessionRequest{Tenant: "acme", Task: "T1", Records: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Corpus(taskSess.ID, CorpusRequest{Remove: []string{"x"}}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("corpus on task session: err = %v, want 400", err)
	}
	if _, err := c.Corpus(s1, CorpusRequest{}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("empty mutation: err = %v, want 400", err)
	}
	if _, err := c.Corpus(s1, CorpusRequest{Remove: []string{"nope"}}); StatusCode(err) != http.StatusBadRequest {
		t.Errorf("unknown remove: err = %v, want 400", err)
	}
	if _, err := c.Corpus("zzz", CorpusRequest{Remove: []string{"h2"}}); StatusCode(err) != http.StatusNotFound {
		t.Errorf("unknown session: err = %v, want 404", err)
	}
	if g := st.Generation(); g != 1 {
		t.Errorf("failed mutations advanced the generation to %d", g)
	}
}

// TestRestartAfterCommitServesMutatedStore closes the service-side
// crash window: the daemon reaches the commit point of a corpus
// mutation and dies before folding the delta into any session. The
// commit is durable, so a restarted daemon must mount the store at the
// new generation — cleanly, with nothing to repair — and sessions
// created against it must serve results byte-identical to an eager
// library run over the mutated corpus.
func TestRestartAfterCommitServesMutatedStore(t *testing.T) {
	prog := `
T(x, <p>, <s>) :- docs(x), ext(x, p, s), p > 500000.
ext(x, p, s) :- from(x, p), from(x, s), numeric(p) = yes.
`
	page := func(price, school string) string {
		return `House for sale.<br>Price: <i>` + price + `</i><br>School: <b>` + school + `</b>`
	}
	dir := t.TempDir()
	w, err := store.Create(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ id, html string }{
		{"h1", page("351000", "Vanhise High")},
		{"h2", page("619000", "Basktall HS")},
		{"h3", page("725000", "Lincoln High")},
	} {
		if err := w.Add(p.id, p.html); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// First daemon lifetime: a session is live over the store when the
	// mutation commits; the process "dies" before the delta is folded.
	st, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, c, shutdown := newTestServer(t, Config{Stores: map[string]*store.DiskStore{"houses": st}})
	created, err := c.CreateSession(CreateSessionRequest{Tenant: "acme", Store: "houses", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("session did not terminate")
		}
		sr, err := c.Step(created.ID, StepRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Done {
			break
		}
	}
	m, err := st.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("h1", page("800000", "Vanhise High")); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("h4", page("910000", "Muir Acres")); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("h3"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: no ApplyCorpusDelta, no re-evaluation, sessions dropped.
	shutdown()
	st.Close()

	// Restarted daemon: mount must come up at generation 1 with nothing
	// to repair, and a fresh registry serves the mutated corpus.
	st2, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		t.Fatalf("remount after crash-after-commit: %v", err)
	}
	defer st2.Close()
	if g := st2.Generation(); g != 1 {
		t.Fatalf("remounted at generation %d, want 1", g)
	}
	if notes := st2.Recovery(); len(notes) != 0 {
		t.Fatalf("clean commit needed repair on remount: %v", notes)
	}
	_, c2, shutdown2 := newTestServer(t, Config{Stores: map[string]*store.DiskStore{"houses": st2}})
	defer shutdown2()
	created2, err := c2.CreateSession(CreateSessionRequest{Tenant: "acme", Store: "houses", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("post-restart session did not terminate")
		}
		sr, err := c2.Step(created2.ID, StepRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Done {
			break
		}
	}
	res, err := c2.Result(created2.ID, false, 0)
	if err != nil {
		t.Fatal(err)
	}

	env := engine.NewEnv()
	var docs []*text.Document
	for _, p := range []struct{ id, html string }{
		{"h1", page("800000", "Vanhise High")},
		{"h2", page("619000", "Basktall HS")},
		{"h4", page("910000", "Muir Acres")},
	} {
		d, err := markup.Parse(p.id, p.html)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	env.AddDocTable("docs", "x", docs)
	lib := assistant.NewSession(env, alog.MustParse(prog), candidateOracle{}, assistant.Config{})
	want, err := lib.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TableString() != want.Final.String() {
		t.Errorf("post-restart session differs from eager run over mutated corpus\nserver:\n%s\nlibrary:\n%s",
			res.TableString(), want.Final.String())
	}
}

// TestRequestBodyLimit: an oversized JSON body is refused with 413
// before the decoder buffers it; a normal-sized request on the same
// server still works.
func TestRequestBodyLimit(t *testing.T) {
	_, c, shutdown := newTestServer(t, Config{MaxRequestBytes: 1 << 10})
	defer shutdown()
	_, err := c.CreateSession(CreateSessionRequest{
		Tenant: "acme", Task: "T1", Records: 3,
		Program: strings.Repeat("% padding\n", 1<<10),
	})
	if StatusCode(err) != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: err = %v, want 413", err)
	}
	created, err := c.CreateSession(CreateSessionRequest{Tenant: "acme", Task: "T1", Records: 3})
	if err != nil {
		t.Fatalf("normal create after 413: %v", err)
	}
	big := StepRequest{Answers: make([]AnswerJSON, 0, 1)}
	for i := 0; i < 200; i++ {
		big.Answers = append(big.Answers, AnswerJSON{Value: strings.Repeat("v", 64), Known: true})
	}
	if _, err := c.Step(created.ID, big); StatusCode(err) != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized step: err = %v, want 413", err)
	}
}
