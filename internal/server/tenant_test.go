package server

import (
	"sync"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
	"iflex/internal/engine"
)

// TestConcurrentTenantsNoBleed runs two tenants' sessions concurrently in
// one process — separate engine contexts, distinct cache budgets — and
// checks complete isolation: each session's result table and
// deterministic engine counters are byte-identical to the same scenario
// run alone through the library, and the byte-budgeted tenant evicts
// while the unlimited tenant never does. Run under -race: any shared
// mutable state between the two evaluation paths trips the detector.
func TestConcurrentTenantsNoBleed(t *testing.T) {
	const (
		records     = 12
		smallBudget = 2048
	)
	type tenantRun struct {
		tenant string
		task   string
		seed   int64
		budget int64
	}
	runs := []tenantRun{
		{tenant: "small", task: "T9", seed: 1, budget: smallBudget},
		{tenant: "unlimited", task: "T6", seed: 2, budget: 0},
	}

	// Solo library references, computed first so the concurrent server
	// runs cannot influence them.
	solo := make([]*assistant.Result, len(runs))
	soloStats := make([]engine.StatsSnapshot, len(runs))
	for i, r := range runs {
		task, err := corpus.TaskByID(r.task)
		if err != nil {
			t.Fatal(err)
		}
		c := task.Generate(records, r.seed)
		s := assistant.NewSession(task.Env(c), alog.MustParse(task.Program), task.Oracle(), assistant.Config{
			Workers: 1, CacheBudget: r.budget,
		})
		if solo[i], err = s.Run(); err != nil {
			t.Fatal(err)
		}
		soloStats[i] = solo[i].Stats.Snapshot()
	}
	if soloStats[0].CacheEvictions == 0 {
		t.Fatalf("small budget (%d bytes) evicted nothing; the bleed check is vacuous", smallBudget)
	}

	_, c, shutdown := newTestServer(t, Config{})
	defer shutdown()

	results := make([]*StreamedResult, len(runs))
	var wg sync.WaitGroup
	errs := make(chan error, len(runs))
	for i, r := range runs {
		wg.Add(1)
		go func(i int, r tenantRun) {
			defer wg.Done()
			task, err := corpus.TaskByID(r.task)
			if err != nil {
				errs <- err
				return
			}
			created, err := c.CreateSession(CreateSessionRequest{
				Tenant: r.tenant, Task: r.task, Records: records, Seed: r.seed,
				Workers: 1, CacheBudgetBytes: r.budget,
			})
			if err != nil {
				errs <- err
				return
			}
			o := task.Oracle()
			var answers []AnswerJSON
			for n := 0; ; n++ {
				if n > 200 {
					errs <- errTooManySteps
					return
				}
				sr, err := c.Step(created.ID, StepRequest{Answers: answers})
				if err != nil {
					errs <- err
					return
				}
				if sr.Done {
					break
				}
				answers = answers[:0]
				for _, qj := range sr.Questions {
					q, err := ParseQuestion(qj)
					if err != nil {
						errs <- err
						return
					}
					ans := o.Answer(q)
					answers = append(answers, AnswerJSON{Value: ans.Value, Known: ans.Known})
				}
			}
			results[i], err = c.Result(created.ID, false, 0)
			if err != nil {
				errs <- err
			}
		}(i, r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, r := range runs {
		got, want := results[i], solo[i]
		if got.TableString() != want.Final.String() {
			t.Errorf("tenant %s: concurrent result differs from solo run\nconcurrent:\n%s\nsolo:\n%s",
				r.tenant, got.TableString(), want.Final.String())
		}
		// Deterministic counters must match the solo run exactly — any
		// cross-tenant stat bleed (or cache sharing, which would convert
		// evaluations into hits) breaks the equality.
		if got.Stats.NodesEvaluated != soloStats[i].NodesEvaluated ||
			got.Stats.CacheHits != soloStats[i].CacheHits ||
			got.Stats.TuplesBuilt != soloStats[i].TuplesBuilt ||
			got.Stats.CacheEvictions != soloStats[i].CacheEvictions {
			t.Errorf("tenant %s: counters differ from solo run:\nconcurrent: evals=%d hits=%d tuples=%d evictions=%d\nsolo:       evals=%d hits=%d tuples=%d evictions=%d",
				r.tenant,
				got.Stats.NodesEvaluated, got.Stats.CacheHits, got.Stats.TuplesBuilt, got.Stats.CacheEvictions,
				soloStats[i].NodesEvaluated, soloStats[i].CacheHits, soloStats[i].TuplesBuilt, soloStats[i].CacheEvictions)
		}
	}
	if results[1].Stats.CacheEvictions != 0 {
		t.Errorf("unlimited tenant evicted %d entries", results[1].Stats.CacheEvictions)
	}
}

var errTooManySteps = &apiError{Status: 0, Msg: "session did not terminate"}
