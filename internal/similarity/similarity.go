// Package similarity implements the approximate string matching used by
// the paper's p-functions approxMatch and similar: token Jaccard overlap
// and TF/IDF cosine similarity, built from scratch on a simple
// punctuation-stripping tokenizer.
package similarity

import (
	"math"
	"sort"
	"strings"
)

// Tokens lower-cases s, strips punctuation, and splits into tokens.
// Leading articles ("the", "a", "an") are kept; callers that want
// article-insensitive matching use Normalize. The implementation is
// byte-wise (non-ASCII bytes separate tokens, exactly as the rune-wise
// mapping did) because tokenisation dominates similarity-join profiles.
func Tokens(s string) []string {
	var out []string
	buf := make([]byte, 0, 16)
	flush := func() {
		if len(buf) > 0 {
			out = append(out, string(buf))
			buf = buf[:0]
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			buf = append(buf, c)
		case c >= 'A' && c <= 'Z':
			buf = append(buf, c+('a'-'A'))
		default:
			flush()
		}
	}
	flush()
	return out
}

// Normalize returns a canonical form: lower-cased, punctuation-stripped
// tokens with leading articles removed, joined by single spaces.
// "The Godfather" and "Godfather, The" normalise to the same string only
// modulo token order, so Normalize also handles the trailing-article comma
// style by moving a trailing article to the front before stripping.
func Normalize(s string) string {
	return strings.Join(normTokens(s), " ")
}

// Jaccard returns |A∩B| / |A∪B| over the token sets of a and b.
// Two empty strings have similarity 0.
func Jaccard(a, b string) float64 {
	as, bs := Tokens(a), Tokens(b)
	if len(as) == 0 || len(bs) == 0 {
		return 0
	}
	set := make(map[string]uint8, len(as)+len(bs))
	for _, t := range as {
		set[t] |= 1
	}
	for _, t := range bs {
		set[t] |= 2
	}
	inter, union := 0, 0
	for _, m := range set {
		union++
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(union)
}

// TFIDF holds document frequencies learned from a corpus of strings and
// scores pairs with cosine similarity of TF/IDF vectors.
type TFIDF struct {
	df map[string]int
	n  int
}

// NewTFIDF builds document-frequency statistics from the corpus.
func NewTFIDF(corpus []string) *TFIDF {
	t := &TFIDF{df: make(map[string]int), n: len(corpus)}
	for _, doc := range corpus {
		seen := map[string]bool{}
		for _, tok := range Tokens(doc) {
			if !seen[tok] {
				seen[tok] = true
				t.df[tok]++
			}
		}
	}
	return t
}

// idf returns the smoothed inverse document frequency of a token.
func (t *TFIDF) idf(tok string) float64 {
	return math.Log(1 + float64(t.n+1)/float64(t.df[tok]+1))
}

// vector builds the TF/IDF vector of s.
func (t *TFIDF) vector(s string) map[string]float64 {
	tf := map[string]float64{}
	for _, tok := range Tokens(s) {
		tf[tok]++
	}
	for tok := range tf {
		tf[tok] *= t.idf(tok)
	}
	return tf
}

// Cosine returns the TF/IDF cosine similarity of a and b in [0, 1].
func (t *TFIDF) Cosine(a, b string) float64 {
	va, vb := t.vector(a), t.vector(b)
	var dot, na, nb float64
	for tok, w := range va {
		na += w * w
		if w2, ok := vb[tok]; ok {
			dot += w * w2
		}
	}
	for _, w := range vb {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// DefaultThreshold is the Jaccard score at or above which Similar matches.
const DefaultThreshold = 0.6

// Similar is the default implementation of the paper's similar /
// approxMatch p-function: true when the normalised strings are equal, one
// contains the other as a token prefix ("Basktall" vs "Basktall HS"), or
// their Jaccard similarity reaches DefaultThreshold. Each side is
// tokenised exactly once.
func Similar(a, b string) bool {
	ta, tb := normTokens(a), normTokens(b)
	return SimilarTokens(ta, tb)
}

// SimilarTokens is Similar over pre-normalised token slices (see
// NormalizedTokens); it lets joins tokenise each value once.
func SimilarTokens(ta, tb []string) bool {
	if len(ta) == 0 || len(tb) == 0 {
		return false
	}
	if tokenPrefix(ta, tb) || tokenPrefix(tb, ta) {
		return true
	}
	return jaccardTokens(ta, tb) >= DefaultThreshold
}

// NormalizedTokens returns the Normalize-equivalent token slice of s.
func NormalizedTokens(s string) []string { return normTokens(s) }

// normTokens tokenises and applies Normalize's article handling.
func normTokens(s string) []string {
	toks := Tokens(s)
	if len(toks) > 1 {
		switch toks[len(toks)-1] {
		case "the", "a", "an":
			toks = append([]string{toks[len(toks)-1]}, toks[:len(toks)-1]...)
		}
	}
	if len(toks) > 1 {
		switch toks[0] {
		case "the", "a", "an":
			toks = toks[1:]
		}
	}
	return toks
}

// jaccardTokens computes Jaccard overlap over token slices.
func jaccardTokens(as, bs []string) float64 {
	if len(as) == 0 || len(bs) == 0 {
		return 0
	}
	set := make(map[string]uint8, len(as)+len(bs))
	for _, t := range as {
		set[t] |= 1
	}
	for _, t := range bs {
		set[t] |= 2
	}
	inter, union := 0, 0
	for _, m := range set {
		union++
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(union)
}

// tokenPrefix reports whether token slice a is a prefix of token slice b.
// Equal slices count as prefixes, covering the equality case.
func tokenPrefix(at, bt []string) bool {
	if len(at) == 0 || len(at) > len(bt) {
		return false
	}
	for i, t := range at {
		if bt[i] != t {
			return false
		}
	}
	return true
}

// TopMatches returns the indices of the k best candidates for query under
// Jaccard similarity, best first; ties break by index. Utility for
// examples and debugging.
func TopMatches(query string, candidates []string, k int) []int {
	type scored struct {
		idx   int
		score float64
	}
	ss := make([]scored, len(candidates))
	for i, c := range candidates {
		ss[i] = scored{i, Jaccard(query, c)}
	}
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].score > ss[j].score })
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].idx
	}
	return out
}
