package similarity

import (
	"testing"
	"testing/quick"
)

func TestTokens(t *testing.T) {
	got := Tokens("The Godfather, Part II (1974)!")
	want := []string{"the", "godfather", "part", "ii", "1974"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := [][2]string{
		{"The Godfather", "godfather"},
		{"Godfather, The", "godfather"},
		{"A Beautiful Mind", "beautiful mind"},
		{"An Affair", "affair"},
		{"THE", "the"}, // single token: article kept
	}
	for _, c := range cases {
		if got := Normalize(c[0]); got != c[1] {
			t.Errorf("Normalize(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard("a b c", "a b c"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := Jaccard("a b", "c d"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
	if got := Jaccard("a b c", "b c d"); got != 0.5 {
		t.Errorf("half = %v", got)
	}
	if got := Jaccard("", "a"); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(a, b string) bool {
		s1, s2 := Jaccard(a, b), Jaccard(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTFIDFCosine(t *testing.T) {
	corpus := []string{
		"database systems", "database design", "query processing",
		"transaction processing", "rare gem",
	}
	ti := NewTFIDF(corpus)
	if got := ti.Cosine("database systems", "database systems"); got < 0.999 {
		t.Errorf("self cosine = %v", got)
	}
	if got := ti.Cosine("database systems", "rare gem"); got != 0 {
		t.Errorf("disjoint cosine = %v", got)
	}
	// A rare shared token should score higher than a common shared token.
	rare := ti.Cosine("rare topic", "rare subject")
	common := ti.Cosine("database topic", "database subject")
	if rare <= common {
		t.Errorf("IDF weighting broken: rare=%v common=%v", rare, common)
	}
	if got := ti.Cosine("", "x"); got != 0 {
		t.Errorf("empty cosine = %v", got)
	}
}

func TestSimilar(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"The Godfather", "Godfather, The", true},
		{"Basktall", "Basktall HS", true},
		{"Basktall HS", "Basktall", true},
		{"Vanhise High", "Vanhise High School", true},
		{"Casablanca", "Citizen Kane", false},
		{"", "x", false},
		{"A Very Long Identical Paper Title About Joins",
			"A Very Long Identical Paper Title About Joins", true},
	}
	for _, c := range cases {
		if got := Similar(c.a, c.b); got != c.want {
			t.Errorf("Similar(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilarSymmetric(t *testing.T) {
	f := func(a, b string) bool { return Similar(a, b) == Similar(b, a) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopMatches(t *testing.T) {
	cands := []string{"query optimization", "join processing", "query processing basics"}
	got := TopMatches("query processing", cands, 2)
	if len(got) != 2 || got[0] != 2 {
		t.Fatalf("TopMatches = %v", got)
	}
	if got := TopMatches("x", cands, 10); len(got) != 3 {
		t.Errorf("k clamping failed: %v", got)
	}
}
