package store_test

// Crash-injection suite: the store's mutations run against a recording
// write-through filesystem (fault.CrashFS), then every disk state a
// power cut could leave behind — a kill at each write/sync/rename
// boundary, plus torn-write prefixes of every unsynced tail — is
// materialized and reopened. The invariant under test is all-or-
// nothing: Open must succeed and yield a corpus byte-identical to
// exactly generation G (the commit never happened) or G+1 (it fully
// happened) — never a mix, never a failed open. Ingest has the weaker
// contract that a crashed ingest is recoverable: Open refuses the
// unfinished directory and a fresh Create sweeps it.
//
// This file is an external test (package store_test) because fault
// imports store for the FS seam types.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iflex/internal/compact"
	"iflex/internal/fault"
	"iflex/internal/store"
	"iflex/internal/text"
)

func crashPages() (map[string]string, []string) {
	return map[string]string{
		"a": "<li><b>Alpha Systems</b><br>New: $10.00</li>",
		"b": "<li><b>Beta Design</b><br>New: $20.00</li>",
		"c": "<li><b>Gamma Theory</b><br>New: $30.00</li>",
		"d": "<li><b>Delta Rules</b><br>New: $40.00</li>",
	}, []string{"a", "b", "c", "d"}
}

// ingest builds a fresh store at dir from the crash pages.
func ingest(t *testing.T, dir string, fsys store.FS) {
	t.Helper()
	pages, order := crashPages()
	w, err := store.Create(dir, store.Options{ShardDocs: 3, NoSync: true, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range order {
		if err := w.Add(id, pages[id]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// corpusDump renders everything observable about a store into one
// string: manifest counts, the live view's ids/texts/token lists, and
// every vocabulary token's postings. Two stores with equal dumps are
// indistinguishable to the engine.
func corpusDump(t *testing.T, s *store.DiskStore) string {
	t.Helper()
	var b strings.Builder
	man := s.Manifest()
	fmt.Fprintf(&b, "gen=%d docs=%d shards=%d vocab=%d text=%d raw=%d\n",
		man.Generation, man.Docs, man.Shards, man.Vocab, man.TextBytes, man.RawBytes)
	for _, d := range s.Docs() {
		fmt.Fprintf(&b, "doc %s len=%d text=%q\n", d.ID(), d.Len(), d.Text())
		bt, ok := s.BlockTokens(d)
		if !ok {
			t.Fatalf("BlockTokens(%s) failed", d.ID())
		}
		nt, ok := s.NormTokens(d)
		if !ok {
			t.Fatalf("NormTokens(%s) failed", d.ID())
		}
		fmt.Fprintf(&b, "  block=%v norm=%v\n", bt, nt)
	}
	for _, tok := range s.SortedTokens() {
		ords, ok := s.TokenPostings(tok)
		if !ok {
			t.Fatalf("TokenPostings(%q) failed", tok)
		}
		fmt.Fprintf(&b, "tok %q -> %v\n", tok, ords)
	}
	return b.String()
}

func openDump(t *testing.T, dir string) string {
	t.Helper()
	s, err := store.Open(dir, store.OpenOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	return corpusDump(t, s)
}

// crashMutationScenario commits one mutation through a CrashFS on a
// store at generation preGens and checks every enumerated crash state.
func crashMutationScenario(t *testing.T, preGens int) {
	dir := filepath.Join(t.TempDir(), "store")
	ingest(t, dir, nil)

	// Advance to the scenario's starting generation (real fs, no record).
	if preGens >= 1 {
		s, err := store.Open(dir, store.OpenOptions{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.BeginMutation()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Put("b", "<li><b>Beta Redux</b><br>New: $25.00</li>"); err != nil {
			t.Fatal(err)
		}
		if err := m.Remove("c"); err != nil {
			t.Fatal(err)
		}
		if err := m.Put("e", "<li><b>Epsilon Words</b><br>New: $50.00</li>"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Commit(); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	refG := openDump(t, dir)

	// The recorded commit: the first-generation scenario updates,
	// removes, and adds; the second removes a previously updated doc.
	cfs, err := fault.NewCrashFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(dir, store.OpenOptions{FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if preGens == 0 {
		if err := m.Put("b", "<li><b>Beta Redux</b><br>New: $25.00</li>"); err != nil {
			t.Fatal(err)
		}
		if err := m.Remove("c"); err != nil {
			t.Fatal(err)
		}
		if err := m.Put("e", "<li><b>Epsilon Words</b><br>New: $50.00</li>"); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := m.Remove("b"); err != nil {
			t.Fatal(err)
		}
		if err := m.Put("f", "<li><b>Zeta Crash</b><br>New: $60.00</li>"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	refG1 := openDump(t, dir)
	if refG1 == refG {
		t.Fatal("mutation changed nothing; scenario is vacuous")
	}

	states := cfs.States(0)
	if len(states) < 10 {
		t.Fatalf("only %d crash states enumerated (ops: %v)", len(states), cfs.OpLog())
	}
	scratch := t.TempDir()
	var sawG, sawG1 int
	for i, st := range states {
		sdir := filepath.Join(scratch, fmt.Sprintf("state-%04d", i))
		if err := st.Materialize(sdir); err != nil {
			t.Fatalf("state %q: materialize: %v", st.Desc, err)
		}
		rs, err := store.Open(sdir, store.OpenOptions{NoSync: true})
		if err != nil {
			t.Fatalf("state %q: Open failed after crash: %v", st.Desc, err)
		}
		var want string
		switch g := rs.Generation(); g {
		case preGens:
			want = refG
			sawG++
		case preGens + 1:
			want = refG1
			sawG1++
		default:
			t.Fatalf("state %q: recovered to generation %d, want %d or %d",
				st.Desc, g, preGens, preGens+1)
		}
		got := corpusDump(t, rs)
		rs.Close()
		if got != want {
			t.Fatalf("state %q: recovered corpus differs from its generation's reference:\n--- got ---\n%s--- want ---\n%s",
				st.Desc, got, want)
		}
		// Recovery must be idempotent: a second open repairs nothing new
		// and sees the same corpus.
		rs2, err := store.Open(sdir, store.OpenOptions{NoSync: true})
		if err != nil {
			t.Fatalf("state %q: second Open failed: %v", st.Desc, err)
		}
		if notes := rs2.Recovery(); len(notes) != 0 {
			t.Fatalf("state %q: second open still repairing: %v", st.Desc, notes)
		}
		if got2 := corpusDump(t, rs2); got2 != want {
			t.Fatalf("state %q: corpus drifted across reopens", st.Desc)
		}
		rs2.Close()
	}
	if sawG == 0 || sawG1 == 0 {
		t.Fatalf("enumeration never exercised both outcomes: %d states at gen %d, %d at gen %d",
			sawG, preGens, sawG1, preGens+1)
	}
}

func TestCrashMutationCommit(t *testing.T)         { crashMutationScenario(t, 0) }
func TestCrashSecondGenerationCommit(t *testing.T) { crashMutationScenario(t, 1) }

// TestCrashIngest kills the initial ingest at every boundary. A store
// is only readable once the manifest appears — and the manifest is
// published last, so every state either opens as the complete corpus
// or refuses to open; in the latter case a fresh Create must sweep the
// leftovers and re-ingest to the exact same corpus.
func TestCrashIngest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cfs, err := fault.NewCrashFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, dir, cfs)
	ref := openDump(t, dir)

	scratch := t.TempDir()
	var complete, recovered int
	for i, st := range cfs.States(0) {
		sdir := filepath.Join(scratch, fmt.Sprintf("state-%04d", i))
		if err := st.Materialize(sdir); err != nil {
			t.Fatalf("state %q: materialize: %v", st.Desc, err)
		}
		s, err := store.Open(sdir, store.OpenOptions{NoSync: true})
		if err == nil {
			got := corpusDump(t, s)
			s.Close()
			if got != ref {
				t.Fatalf("state %q: opened but differs from the completed ingest", st.Desc)
			}
			complete++
			continue
		}
		// Unreadable: the crash predates the manifest publish. Re-ingest
		// over the debris must work and match.
		ingest(t, sdir, nil)
		if got := openDump(t, sdir); got != ref {
			t.Fatalf("state %q: re-ingest after crash differs from reference", st.Desc)
		}
		recovered++
	}
	if complete == 0 || recovered == 0 {
		t.Fatalf("enumeration never exercised both outcomes: %d complete, %d recovered", complete, recovered)
	}
}

// TestCrashSpillSweep crashes a spill workload at every boundary and
// checks a restarted spill area always comes up empty: spill files are
// cache, and NewSpill sweeps whatever a dead process stranded.
func TestCrashSpillSweep(t *testing.T) {
	d1 := text.NewDocument("doc-1", "alpha beta", nil)
	resolve := func(id string) (*text.Document, bool) {
		if id == "doc-1" {
			return d1, true
		}
		return nil, false
	}
	dir := filepath.Join(t.TempDir(), "spill")
	cfs, err := fault.NewCrashFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := store.NewSpillFS(dir, resolve, cfs)
	if err != nil {
		t.Fatal(err)
	}
	tb := compact.NewTable("x")
	tb.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(d1.WholeSpan())}})
	if _, err := sp.Save("k1", tb); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Save("k1", tb); err != nil { // re-save drops the old file
		t.Fatal(err)
	}
	if _, err := sp.Save("k2", tb); err != nil {
		t.Fatal(err)
	}

	scratch := t.TempDir()
	for i, st := range cfs.States(0) {
		sdir := filepath.Join(scratch, fmt.Sprintf("state-%04d", i))
		if err := st.Materialize(sdir); err != nil {
			t.Fatalf("state %q: materialize: %v", st.Desc, err)
		}
		sp2, err := store.NewSpill(sdir, resolve)
		if err != nil {
			t.Fatalf("state %q: NewSpill failed over crash debris: %v", st.Desc, err)
		}
		if n := sp2.Len(); n != 0 {
			t.Fatalf("state %q: restarted spill reports %d tables", st.Desc, n)
		}
		ents, err := os.ReadDir(sdir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "spill-") {
				t.Fatalf("state %q: stale %s survived restart", st.Desc, e.Name())
			}
		}
		sp2.Close()
	}
}
