package store

import (
	"container/list"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"iflex/internal/markup"
	"iflex/internal/text"
)

// OpenOptions configures a DiskStore.
type OpenOptions struct {
	// ResidentBudget caps the estimated bytes of materialized document
	// content kept resident; least-recently-loaded pages are released
	// (and re-materialize on next touch) once the budget is exceeded.
	// 0 means unlimited.
	ResidentBudget int64
	// PostingsCacheBytes caps the LRU of decoded posting runs kept by the
	// token index, so repeated probes of the same token skip the per-call
	// uvarint decode. 0 means the default (4 MB); negative disables.
	PostingsCacheBytes int64
	// NoSync skips the fsyncs in the mutation commit protocol (see
	// Options.NoSync): commits are faster but a crash may lose the
	// freshest committed generations. Recovery still never yields a torn
	// store on filesystems with atomic rename.
	NoSync bool
	// FS overrides the filesystem seam for mutations and recovery sweeps
	// (tests/crash injection). nil means the real filesystem honouring
	// NoSync; when set, NoSync is ignored.
	FS FS
}

// docMeta locates one document's record inside its shard.
type docMeta struct {
	shard   int
	offset  uint64 // of the record's recLen field
	recLen  uint32
	textLen uint32
	id      string
}

// DiskStore is the sharded, file-backed Store. Opening reads only the
// shard TOCs, the manifest, and the token-index vocabulary; page content
// is read, parsed, and token/line-indexed on first touch, per document,
// and released again under the resident budget. It implements the
// engine's DocIndex and PostingsIndex interfaces, answering token
// queries from the ingest-time index without paging text in.
type DiskStore struct {
	dir    string
	fs     FS
	man    Manifest
	shards []*os.File

	// recovery notes what Open repaired: orphan files swept, a torn
	// final-generation sidecar rolled back. Empty for a clean open.
	recovery []string
	meta     []docMeta
	docs     []*text.Document // every ordinal ever written, incl. superseded
	ord      map[*text.Document]int

	// Mutable-generation state. Ordinals are append-only: a mutation
	// writes superseding/new records into a fresh shard and tombstones
	// the ordinals they replace. view is the live corpus in stable order
	// (an updated document keeps the position its id first appeared at).
	tomb []bool
	view []*text.Document
	live map[string]int // id -> live ordinal

	idx *tokenIndex

	budget   int64
	mu       sync.Mutex // guards lru, loadedB, trimming
	lru      *list.List // of int (ordinal), front = oldest
	lruElem  []*list.Element
	loadedB  int64
	trimming bool
	trimDone *sync.Cond // broadcast when a trim pass finishes

	loads    atomic.Int64
	releases atomic.Int64
	closed   atomic.Bool
}

// Open opens a store previously built by a Writer. Open is also the
// crash-recovery point: the manifest (always published atomically) names
// exactly what belongs to the store, so orphan shards, sidecars, and
// *.tmp staging files beyond it — leftovers of a crashed commit — are
// ignored and swept. If the final generation's delta sidecar is torn
// (missing, truncated, or failing its integrity footer), the store rolls
// back to the previous generation: the manifest is rewritten, the
// generation's shard and sidecar are swept, and Open succeeds with the
// last intact state. A torn sidecar below the final generation cannot be
// rolled past (later generations build on it) and fails loudly.
func Open(dir string, opts OpenOptions) (*DiskStore, error) {
	if opts.FS == nil {
		opts.FS = RealFS(!opts.NoSync)
	}
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("store: open %s: bad manifest: %w", dir, err)
	}
	if man.Version != version {
		return nil, fmt.Errorf("store: open %s: version %d (want %d)", dir, man.Version, version)
	}
	s := &DiskStore{
		dir:    dir,
		fs:     opts.FS,
		man:    man,
		budget: opts.ResidentBudget,
		lru:    list.New(),
	}
	s.trimDone = sync.NewCond(&s.mu)
	for i := 0; i < man.Shards; i++ {
		f, err := os.Open(filepath.Join(dir, shardName(i)))
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("store: open shard %d: %w", i, err)
		}
		s.shards = append(s.shards, f)
		if err := s.readTOC(i, f); err != nil {
			s.Close()
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	if len(s.meta) != man.Docs {
		s.Close()
		return nil, fmt.Errorf("store: open %s: shards hold %d docs, manifest says %d", dir, len(s.meta), man.Docs)
	}
	s.tomb = make([]bool, len(s.meta))
	baseDocs := man.BaseDocs
	if baseDocs == 0 {
		baseDocs = man.Docs
	}
	idx, err := openTokenIndex(filepath.Join(dir, indexName), baseDocs)
	if err != nil {
		s.Close()
		return nil, err
	}
	idx.setCacheCap(opts.PostingsCacheBytes)
	s.idx = idx
	for g := 1; g <= s.man.Generation; g++ {
		patch, err := s.parseDeltaFile(g)
		if err != nil {
			if g == s.man.Generation {
				// The freshest generation's sidecar is torn: roll back to
				// the last intact state instead of failing the whole store.
				if rerr := s.rollbackLastGeneration(err); rerr != nil {
					s.Close()
					return nil, fmt.Errorf("store: open %s: %w", dir, rerr)
				}
				break
			}
			s.Close()
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
		s.applyPatch(patch)
	}
	if len(s.idx.vocab) != s.man.Vocab {
		s.Close()
		return nil, fmt.Errorf("store: open %s: index holds %d tokens, manifest says %d", dir, len(s.idx.vocab), s.man.Vocab)
	}
	s.docs = make([]*text.Document, len(s.meta))
	s.ord = make(map[*text.Document]int, len(s.meta))
	s.lruElem = make([]*list.Element, len(s.meta))
	for i := range s.meta {
		ord := i
		s.docs[i] = text.NewLazyDocument(s.meta[i].id, int(s.meta[i].textLen), func() (text.DocContent, error) {
			return s.loadDoc(ord)
		})
		s.ord[s.docs[i]] = i
	}
	if removed, errs := sweepStoreOrphans(s.fs, dir, s.man.Shards, s.man.Generation); len(removed) > 0 || len(errs) > 0 {
		for _, name := range removed {
			s.recovery = append(s.recovery, fmt.Sprintf("swept orphan %s", name))
		}
		for _, e := range errs {
			s.recovery = append(s.recovery, e.Error())
		}
	}
	if err := s.rebuildView(); err != nil {
		s.Close()
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return s, nil
}

// rollbackLastGeneration undoes the manifest's final generation at Open
// time, after its delta sidecar failed to parse: the generation's shard
// is dropped, counts are recomputed, and the manifest is durably
// rewritten at the previous generation so the rollback is permanent. The
// in-memory index state is untouched by the failed parse (sidecars apply
// atomically), so after rollback it is exactly the previous generation's.
func (s *DiskStore) rollbackLastGeneration(cause error) error {
	g := s.man.Generation
	dropShard := s.man.Shards - 1
	if g < 1 || dropShard < 0 {
		return cause
	}
	keep := 0
	var dropText, dropRaw int64
	for _, m := range s.meta {
		if m.shard < dropShard {
			keep++
			continue
		}
		dropText += int64(m.textLen)
		// rawLen sits after recLen, idLen, id, and textLen in the record.
		b := make([]byte, 4)
		if _, err := s.shards[m.shard].ReadAt(b, int64(m.offset)+4+4+int64(len(m.id))+4); err != nil {
			return fmt.Errorf("rolling back generation %d (%v): reading dropped record %q: %w", g, cause, m.id, err)
		}
		dropRaw += int64(binary.LittleEndian.Uint32(b))
	}
	man := s.man
	man.Generation = g - 1
	man.Shards = dropShard
	man.Docs = keep
	man.Vocab = len(s.idx.vocab)
	man.TextBytes -= dropText
	man.RawBytes -= dropRaw
	if man.Generation == 0 {
		man.BaseDocs = 0
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("rolling back generation %d (%v): %w", g, cause, err)
	}
	if err := atomicWriteFile(s.fs, filepath.Join(s.dir, manifestName), append(mb, '\n')); err != nil {
		return fmt.Errorf("rolling back generation %d (%v): rewriting manifest: %w", g, cause, err)
	}
	s.shards[dropShard].Close()
	s.shards = s.shards[:dropShard]
	s.meta = s.meta[:keep]
	s.tomb = s.tomb[:keep]
	s.man = man
	s.recovery = append(s.recovery,
		fmt.Sprintf("rolled back to generation %d: %v", man.Generation, cause))
	return nil
}

// Recovery reports what Open repaired (orphans swept, a torn final
// generation rolled back); empty for a clean open.
func (s *DiskStore) Recovery() []string {
	return append([]string(nil), s.recovery...)
}

// rebuildView recomputes the live-document view: ordinals ascending,
// each id taking the position of its first appearance, superseded
// records replaced by their live successor and removed ids dropped.
func (s *DiskStore) rebuildView() error {
	s.live = make(map[string]int, len(s.meta))
	for i, m := range s.meta {
		if s.tomb[i] {
			continue
		}
		if prev, dup := s.live[m.id]; dup {
			return fmt.Errorf("document %q live at ordinals %d and %d", m.id, prev, i)
		}
		s.live[m.id] = i
	}
	seen := make(map[string]bool, len(s.live))
	s.view = s.view[:0]
	for _, m := range s.meta {
		if seen[m.id] {
			continue
		}
		seen[m.id] = true
		if ord, ok := s.live[m.id]; ok {
			s.view = append(s.view, s.docs[ord])
		}
	}
	return nil
}

// readTOC parses one shard's footer and table of contents.
func (s *DiskStore) readTOC(shard int, f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size < int64(len(shardMagic))+4+footerSize {
		return fmt.Errorf("file too short (%d bytes)", size)
	}
	hdr := make([]byte, len(shardMagic)+4)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return err
	}
	if string(hdr[:4]) != shardMagic {
		return fmt.Errorf("bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return fmt.Errorf("version %d (want %d)", v, version)
	}
	foot := make([]byte, footerSize)
	if _, err := f.ReadAt(foot, size-footerSize); err != nil {
		return err
	}
	if string(foot[8:]) != footerMagic {
		return fmt.Errorf("bad footer magic %q", foot[8:])
	}
	tocOff := binary.LittleEndian.Uint64(foot[:8])
	if tocOff < uint64(len(hdr)) || tocOff > uint64(size-footerSize) {
		return fmt.Errorf("TOC offset %d out of range", tocOff)
	}
	tb := make([]byte, uint64(size-footerSize)-tocOff)
	if _, err := f.ReadAt(tb, int64(tocOff)); err != nil {
		return err
	}
	r := bufReader{b: tb}
	count := int(r.u32("TOC count"))
	for i := 0; i < count; i++ {
		m := docMeta{shard: shard}
		m.offset = r.u64("TOC offset")
		m.recLen = r.u32("TOC recLen")
		m.textLen = r.u32("TOC textLen")
		idLen := int(r.u32("TOC idLen"))
		m.id = string(r.bytes(idLen, "TOC id"))
		if r.err != nil {
			return r.err
		}
		if m.offset+4+uint64(m.recLen) > tocOff {
			return fmt.Errorf("doc %q record [%d,+%d) overlaps TOC", m.id, m.offset, m.recLen)
		}
		s.meta = append(s.meta, m)
	}
	if r.err != nil || r.off != len(tb) {
		return fmt.Errorf("malformed TOC")
	}
	return nil
}

// readRecord reads a document's record bytes (without the recLen
// prefix) and parses the fixed header, leaving the reader positioned at
// the token lists.
func (s *DiskStore) readRecord(ord int) (r *bufReader, rawLen, crc uint32, err error) {
	m := s.meta[ord]
	if s.closed.Load() {
		return nil, 0, 0, fmt.Errorf("store is closed")
	}
	b := make([]byte, int(m.recLen))
	if _, err := s.shards[m.shard].ReadAt(b, int64(m.offset)+4); err != nil {
		return nil, 0, 0, fmt.Errorf("reading record: %w", err)
	}
	r = &bufReader{b: b}
	idLen := int(r.u32("idLen"))
	id := string(r.bytes(idLen, "id"))
	textLen := r.u32("textLen")
	rawLen = r.u32("rawLen")
	crc = r.u32("crc")
	if r.err != nil {
		return nil, 0, 0, r.err
	}
	if id != m.id || textLen != m.textLen {
		return nil, 0, 0, fmt.Errorf("record/TOC mismatch for doc %q", m.id)
	}
	return r, rawLen, crc, nil
}

// loadDoc is the lazy-load callback: read the record, verify the
// checksum, re-parse the markup. Any failure is returned (and surfaces
// as a per-document quarantine through the engine's fault guard).
func (s *DiskStore) loadDoc(ord int) (text.DocContent, error) {
	r, rawLen, crc, err := s.readRecord(ord)
	if err != nil {
		return text.DocContent{}, err
	}
	// Skip the token lists.
	nBlock := int(r.u32("nBlock"))
	r.bytes(4*nBlock, "block tokens")
	nNorm := int(r.u32("nNorm"))
	r.bytes(4*nNorm, "norm tokens")
	raw := r.bytes(int(rawLen), "raw markup")
	if r.err != nil {
		return text.DocContent{}, r.err
	}
	if crc32.ChecksumIEEE(raw) != crc {
		return text.DocContent{}, fmt.Errorf("doc %q: markup checksum mismatch (corrupt shard?)", s.meta[ord].id)
	}
	c, err := markup.ParseContent(s.meta[ord].id, string(raw))
	if err != nil {
		return text.DocContent{}, err
	}
	s.noteLoad(ord)
	return c, nil
}

// estBytes approximates the resident footprint of a materialized page:
// text + byte->token index (8B/byte) + token/line tables + lazy lower.
func estBytes(textLen int) int64 { return int64(textLen)*14 + 512 }

// noteLoad records a materialization for the resident budget and kicks
// off a trim when over. Trimming runs in a separate goroutine because
// the caller holds the loading document's materialization lock — a
// same-goroutine release of another mid-load document could deadlock.
func (s *DiskStore) noteLoad(ord int) {
	s.loads.Add(1)
	if s.budget <= 0 {
		return
	}
	s.mu.Lock()
	if e := s.lruElem[ord]; e != nil {
		s.lru.MoveToBack(e)
	} else {
		s.lruElem[ord] = s.lru.PushBack(ord)
		s.loadedB += estBytes(int(s.meta[ord].textLen))
	}
	over := s.loadedB > s.budget && !s.trimming
	if over {
		s.trimming = true
	}
	s.mu.Unlock()
	if over {
		go s.trim()
	}
}

// trim releases least-recently-loaded pages until back under budget.
func (s *DiskStore) trim() {
	for {
		s.mu.Lock()
		if s.loadedB <= s.budget || s.lru.Len() <= 1 {
			s.trimming = false
			s.trimDone.Broadcast()
			s.mu.Unlock()
			return
		}
		e := s.lru.Front()
		ord := e.Value.(int)
		s.lru.Remove(e)
		s.lruElem[ord] = nil
		s.loadedB -= estBytes(int(s.meta[ord].textLen))
		s.mu.Unlock()
		// Outside s.mu: Release takes the document's own lock and may
		// wait for an in-flight load of that document to finish.
		if s.docs[ord].Release() {
			s.releases.Add(1)
		}
	}
}

// Len returns the number of live documents.
func (s *DiskStore) Len() int { return len(s.view) }

// Doc returns the i'th live document handle.
func (s *DiskStore) Doc(i int) *text.Document { return s.view[i] }

// Docs returns the live document handles in stable view order: an
// updated document keeps the position its id first appeared at, removed
// ids drop out, added documents append. Handles of unchanged documents
// are identical across mutations. The returned slice is invalidated by
// the next committed mutation.
func (s *DiskStore) Docs() []*text.Document { return s.view }

// DocByID returns the live document with the given id.
func (s *DiskStore) DocByID(id string) (*text.Document, bool) {
	ord, ok := s.live[id]
	if !ok {
		return nil, false
	}
	return s.docs[ord], true
}

// Generation returns the number of committed mutations.
func (s *DiskStore) Generation() int { return s.man.Generation }

// Manifest returns the store's manifest.
func (s *DiskStore) Manifest() Manifest { return s.man }

// Loads and Releases report materialization traffic (for stats/tests).
func (s *DiskStore) Loads() int64    { return s.loads.Load() }
func (s *DiskStore) Releases() int64 { return s.releases.Load() }

// TrimWait blocks until no budget trim is in flight. Trimming is
// asynchronous, so Releases and ResidentEstimate read immediately after
// a bulk sweep may not reflect it yet; a quiesced caller (no concurrent
// loads) that wants settled numbers waits here first.
func (s *DiskStore) TrimWait() {
	s.mu.Lock()
	for s.trimming {
		s.trimDone.Wait()
	}
	s.mu.Unlock()
}

// ResidentEstimate returns the current estimated resident content bytes.
func (s *DiskStore) ResidentEstimate() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadedB
}

// Close closes the shard files. Content already materialized stays
// readable; a released page touched after Close faults (and quarantines).
func (s *DiskStore) Close() error {
	s.closed.Store(true)
	var first error
	for _, f := range s.shards {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.idx != nil {
		if err := s.idx.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DocOrdinal returns d's position in Docs(), or false if d is not from
// this store.
func (s *DiskStore) DocOrdinal(d *text.Document) (int, bool) {
	i, ok := s.ord[d]
	return i, ok
}

// NumDocs returns the ordinal space size — every record ever written,
// including superseded ones, so ordinals from any generation stay
// addressable.
func (s *DiskStore) NumDocs() int { return len(s.docs) }

// BlockTokens returns the distinct blocking tokens recorded for d at
// ingest, reading only the record's token header (never the page text).
// ok is false when d is not from this store or the read fails — callers
// fall back to tokenizing the text.
func (s *DiskStore) BlockTokens(d *text.Document) ([]string, bool) {
	return s.docTokens(d, false)
}

// NormTokens returns the ordered normalized token sequence recorded for
// the whole page at ingest; same contract as BlockTokens.
func (s *DiskStore) NormTokens(d *text.Document) ([]string, bool) {
	return s.docTokens(d, true)
}

func (s *DiskStore) docTokens(d *text.Document, norm bool) ([]string, bool) {
	ord, ok := s.ord[d]
	if !ok {
		return nil, false
	}
	r, _, _, err := s.readRecord(ord)
	if err != nil {
		return nil, false
	}
	nBlock := int(r.u32("nBlock"))
	ids := r.u32s(nBlock, "block tokens")
	if norm {
		nNorm := int(r.u32("nNorm"))
		ids = r.u32s(nNorm, "norm tokens")
	}
	if r.err != nil {
		return nil, false
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		tok, ok := s.idx.token(id)
		if !ok {
			return nil, false
		}
		out[i] = tok
	}
	return out, true
}

// TokenPostings returns the sorted ordinals of live documents whose
// blocking token set contains tok: the persistent base run filtered by
// the tombstone map, merged with the delta-generation runs. A token
// absent from the vocabulary returns (nil, true): the index
// authoritatively says no document contains it. ok is false only on
// read failure. The returned slice is shared (cached) — callers must
// not modify it.
func (s *DiskStore) TokenPostings(tok string) ([]int, bool) {
	return s.idx.postings(tok, s.tomb)
}

// tokenIndex is the open tokens.idx: vocabulary and posting offsets in
// memory, posting runs read lazily. Mutations extend the vocabulary and
// add per-token delta ordinals in memory (persisted via delta sidecars);
// offs only ever covers the base vocabulary.
type tokenIndex struct {
	f        *os.File
	vocab    []string
	ids      map[string]uint32
	offs     []uint64
	docCount int              // base ordinals covered by the file's runs
	extra    map[uint32][]int // token id -> delta-generation ordinals, sorted

	// Decoded-run cache: repeated probes of a hot token (simjoin blocking
	// re-probes the same title tokens across evaluations) skip the uvarint
	// decode and tombstone filter. Invalidated wholesale on mutation.
	pmu    sync.Mutex
	pcache map[string]*list.Element
	plru   *list.List // of *postEntry, front = oldest
	pbytes int64
	pcap   int64
}

type postEntry struct {
	tok   string
	ords  []int
	bytes int64
}

const defaultPostingsCache = 4 << 20

func (x *tokenIndex) setCacheCap(capBytes int64) {
	switch {
	case capBytes == 0:
		x.pcap = defaultPostingsCache
	case capBytes < 0:
		x.pcap = 0
	default:
		x.pcap = capBytes
	}
}

func (x *tokenIndex) cacheGet(tok string) ([]int, bool) {
	if x.pcap <= 0 {
		return nil, false
	}
	x.pmu.Lock()
	defer x.pmu.Unlock()
	e, ok := x.pcache[tok]
	if !ok {
		return nil, false
	}
	x.plru.MoveToBack(e)
	return e.Value.(*postEntry).ords, true
}

func (x *tokenIndex) cachePut(tok string, ords []int) {
	if x.pcap <= 0 {
		return
	}
	ent := &postEntry{tok: tok, ords: ords, bytes: int64(len(ords))*8 + int64(len(tok)) + 64}
	x.pmu.Lock()
	if old, ok := x.pcache[tok]; ok {
		x.pbytes -= old.Value.(*postEntry).bytes
		x.plru.Remove(old)
	}
	x.pcache[tok] = x.plru.PushBack(ent)
	x.pbytes += ent.bytes
	for x.pbytes > x.pcap && x.plru.Len() > 1 {
		oldest := x.plru.Front()
		v := oldest.Value.(*postEntry)
		x.plru.Remove(oldest)
		delete(x.pcache, v.tok)
		x.pbytes -= v.bytes
	}
	x.pmu.Unlock()
}

func (x *tokenIndex) cacheReset() {
	x.pmu.Lock()
	x.pcache = make(map[string]*list.Element)
	x.plru = list.New()
	x.pbytes = 0
	x.pmu.Unlock()
}

func openTokenIndex(path string, docCount int) (*tokenIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open token index: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fail := func(format string, args ...any) (*tokenIndex, error) {
		f.Close()
		return nil, fmt.Errorf("store: token index: "+format, args...)
	}
	hdr := make([]byte, 16)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return fail("reading header: %v", err)
	}
	if string(hdr[:4]) != indexMagic {
		return fail("bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return fail("version %d (want %d)", v, version)
	}
	vocabCount := int(binary.LittleEndian.Uint32(hdr[8:]))
	if dc := int(binary.LittleEndian.Uint32(hdr[12:])); dc != docCount {
		return fail("indexed %d docs, store has %d", dc, docCount)
	}
	// Vocabulary and offsets occupy the file up to the first posting run;
	// read generously: everything before offs[0] per the writer's layout.
	body := make([]byte, st.Size()-16)
	if _, err := f.ReadAt(body, 16); err != nil {
		return fail("reading vocabulary: %v", err)
	}
	r := bufReader{b: body}
	idx := &tokenIndex{
		f: f, docCount: docCount,
		ids:    make(map[string]uint32, vocabCount),
		extra:  make(map[uint32][]int),
		pcache: make(map[string]*list.Element),
		plru:   list.New(),
	}
	idx.vocab = make([]string, vocabCount)
	for i := 0; i < vocabCount; i++ {
		n := int(r.u16("vocab len"))
		idx.vocab[i] = string(r.bytes(n, "vocab token"))
		idx.ids[idx.vocab[i]] = uint32(i)
	}
	idx.offs = make([]uint64, vocabCount+1)
	for i := range idx.offs {
		idx.offs[i] = r.u64("posting offset")
	}
	if r.err != nil {
		return fail("%v", r.err)
	}
	for i := 0; i < vocabCount; i++ {
		if idx.offs[i] > idx.offs[i+1] || idx.offs[vocabCount] > uint64(st.Size()) {
			return fail("posting offsets out of order")
		}
	}
	return idx, nil
}

func (x *tokenIndex) token(id uint32) (string, bool) {
	if int(id) >= len(x.vocab) {
		return "", false
	}
	return x.vocab[id], true
}

func (x *tokenIndex) postings(tok string, tomb []bool) ([]int, bool) {
	id, ok := x.ids[tok]
	if !ok {
		return nil, true // authoritative: no page contains this token
	}
	if ords, hit := x.cacheGet(tok); hit {
		return ords, true
	}
	var out []int
	if int(id) < len(x.offs)-1 { // base-vocabulary token: decode its file run
		n := x.offs[id+1] - x.offs[id]
		if n > 0 {
			b := make([]byte, n)
			if _, err := x.f.ReadAt(b, int64(x.offs[id])); err != nil {
				return nil, false
			}
			var err error
			out, err = decodePostings(b, x.docCount)
			if err != nil {
				return nil, false
			}
		}
	}
	if len(tomb) > 0 {
		live := out[:0]
		for _, ord := range out {
			if !tomb[ord] {
				live = append(live, ord)
			}
		}
		out = live
		for _, ord := range x.extra[id] { // delta ordinals all exceed base ones
			if !tomb[ord] {
				out = append(out, ord)
			}
		}
	} else {
		out = append(out, x.extra[id]...)
	}
	x.cachePut(tok, out)
	return out, true
}

func (x *tokenIndex) close() error { return x.f.Close() }

// Vocab returns the number of distinct indexed tokens.
func (s *DiskStore) Vocab() int { return len(s.idx.vocab) }

// SortedTokens returns the vocabulary sorted lexically (debug helper).
func (s *DiskStore) SortedTokens() []string {
	out := append([]string(nil), s.idx.vocab...)
	sort.Strings(out)
	return out
}

// normalizeSpace matches text.Span.NormText's whitespace collapsing, so
// ingest-time normalized tokens equal query-time NormalizedTokens(NormText()).
func normalizeSpace(s string) string { return strings.Join(strings.Fields(s), " ") }
