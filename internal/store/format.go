package store

import (
	"encoding/binary"
	"fmt"
)

// On-disk layout (all integers little-endian).
//
// Shard file (shard-NNNN.ifs):
//
//	"IFSH" u32(version)
//	record*                      one per document, in ordinal order
//	TOC                          u32(count) entry*
//	u64(tocOffset) "IFST"        12-byte footer
//
// record:
//
//	u32(recLen)                  length of everything after this field
//	u32(idLen) id
//	u32(textLen)                 length of the parsed plain text
//	u32(rawLen) u32(crc32(raw))  raw markup length + checksum
//	u32(nBlock) u32*             distinct blocking-token ids, sorted
//	u32(nNorm)  u32*             normalized whole-page token ids, in order
//	raw                          the markup source, re-parsed on load
//
// TOC entry:
//
//	u64(offset)                  file offset of the record's recLen field
//	u32(recLen) u32(textLen)
//	u32(idLen) id
//
// Token lists live ahead of the raw markup so the index adapter can read
// a record's tokens without paging in (or parsing) the page itself.
//
// Token index file (tokens.idx):
//
//	"IFTI" u32(version) u32(vocabCount) u32(docCount)
//	vocab: (u16(len) bytes)*     token strings, in token-id order
//	u64*(vocabCount+1)           posting-run file offsets (begin..end)
//	postings                     per token: uvarint deltas of doc ordinals
//
// The vocabulary and offset table load at Open (they are small); posting
// runs are read lazily per token.
//
// Delta sidecar (delta-NNNN.idx), one per committed mutation generation;
// the generation's records live in an ordinary shard file appended to
// the manifest's shard list:
//
//	"IFDX" u32(version) u32(generation)
//	u32(prevDocs) u32(newDocs)       ordinal-space size before/after
//	u32(prevVocab)                   vocabulary size before
//	u32(nTomb) u32*                  ordinals superseded/removed, sorted
//	u32(nVocab) (u16(len) bytes)*    tokens appended, in token-id order
//	u32(nPost) (u32(tokenID) u32(runLen) run)*
//	                                 per-token posting additions; each run
//	                                 is uvarint gaps over absolute ordinals
//	u32(crc32(all preceding bytes)) "IFDE"
//	                                 8-byte integrity footer: a sidecar
//	                                 without an intact footer is torn, and
//	                                 Open rolls the store back to the
//	                                 previous generation instead of
//	                                 corrupting the vocabulary chain
//
// Ordinals are append-only: a superseding record gets a new ordinal and
// the old one is tombstoned, so every posting run — base or delta —
// stays sorted and runs concatenate in generation order.
//
// Version history: 1 = original layout; 2 = delta sidecars carry the
// integrity footer (all files share one version number, so a v1 store
// must be re-ingested).
const (
	shardMagic     = "IFSH"
	footerMagic    = "IFST"
	indexMagic     = "IFTI"
	deltaMagic     = "IFDX"
	deltaFootMagic = "IFDE"
	version        = 2

	footerSize      = 12
	deltaFooterSize = 8
)

// bufReader decodes the little-endian primitives above from a byte
// slice, turning overruns into errors instead of panics so a truncated
// or corrupted file surfaces as a load fault.
type bufReader struct {
	b   []byte
	off int
	err error
}

func (r *bufReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("truncated %s at offset %d", what, r.off)
	}
}

func (r *bufReader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *bufReader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *bufReader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *bufReader) bytes(n int, what string) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *bufReader) u32s(n int, what string) []uint32 {
	if r.err != nil || n < 0 || r.off+4*n > len(r.b) {
		r.fail(what)
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(r.b[r.off+4*i:])
	}
	r.off += 4 * n
	return out
}

// bufWriter encodes the same primitives into an append buffer.
type bufWriter struct{ b []byte }

func (w *bufWriter) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *bufWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *bufWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *bufWriter) str(s string) { w.b = append(w.b, s...) }
func (w *bufWriter) u32s(vs []uint32) {
	for _, v := range vs {
		w.u32(v)
	}
}

// appendDelta appends one posting as a uvarint gap. prev is the previous
// ordinal (-1 before the first), so every gap is >= 1.
func appendDelta(dst []byte, ord, prev int) []byte {
	return binary.AppendUvarint(dst, uint64(ord-prev))
}

// decodePostings expands a posting run back into sorted doc ordinals.
func decodePostings(b []byte, docCount int) ([]int, error) {
	var out []int
	prev := -1
	for len(b) > 0 {
		gap, n := binary.Uvarint(b)
		if n <= 0 || gap == 0 {
			return nil, fmt.Errorf("corrupt posting run")
		}
		b = b[n:]
		prev += int(gap)
		if prev >= docCount {
			return nil, fmt.Errorf("posting ordinal %d out of range (%d docs)", prev, docCount)
		}
		out = append(out, prev)
	}
	return out, nil
}
