package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem seam every store and spill write goes through.
// Reads stay on plain os calls — only mutations (creates, writes, syncs,
// renames, removes) matter for crash consistency, and routing them
// through one interface lets a test harness record the exact sequence of
// durability-relevant operations and reconstruct the disk state a kill
// at any boundary would leave behind (internal/fault.CrashFS).
//
// The production implementation (RealFS) maps directly onto the OS; with
// sync disabled it keeps the same protocol (temp files, renames) but
// turns Sync/SyncDir into no-ops, trading the durable-commit guarantee
// for lower commit latency.
type FS interface {
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Rename atomically replaces newpath with oldpath. The rename is
	// durable only after a SyncDir of the parent directory.
	Rename(oldpath, newpath string) error
	// Remove deletes path. Missing files are not an error.
	Remove(path string) error
	// SyncDir fsyncs a directory, making its entry operations (creates,
	// renames, removes) durable.
	SyncDir(dir string) error
	// ReadDir lists the file names in dir (no recursion, no order
	// guarantee beyond os.ReadDir's sorting).
	ReadDir(dir string) ([]string, error)
}

// File is the writable handle FS.Create returns.
type File interface {
	io.Writer
	// Sync makes all bytes written so far durable.
	Sync() error
	Close() error
}

// RealFS returns the production filesystem. With sync true, Sync and
// SyncDir are real fsyncs; with sync false they are no-ops (the commit
// protocol — temp file, rename, single publish point — is unchanged, so
// a crash still never yields a torn manifest or sidecar on filesystems
// with atomic rename, but freshly committed generations may be lost).
func RealFS(sync bool) FS { return osFS{sync: sync} }

type osFS struct{ sync bool }

func (fs osFS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return osFile{File: f, sync: fs.sync}, nil
}

func (fs osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (fs osFS) Remove(path string) error {
	err := os.Remove(path)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

func (fs osFS) SyncDir(dir string) error {
	if !fs.sync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (fs osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

type osFile struct {
	*os.File
	sync bool
}

func (f osFile) Sync() error {
	if !f.sync {
		return nil
	}
	return f.File.Sync()
}

// atomicWriteFile durably publishes data at path: write to path+".tmp",
// fsync, close, rename over path, fsync the parent directory. After the
// rename the new content is the only content a reader can see; after the
// directory sync it survives a crash. A crash at any earlier point
// leaves at most a *.tmp orphan (swept by Open) plus the old file.
func atomicWriteFile(fs FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// sweepStoreOrphans removes leftover store files a crash may have
// stranded in dir: *.tmp staging files, shard files beyond the
// manifest's shard count, and delta sidecars beyond its generation.
// With keepShards/keepGens both -1 every store file is swept (a crashed
// ingest never published a manifest, so nothing in the directory is
// reachable). Unrecognized names (e.g. truth.txt) are left alone, and
// removal failures are reported back rather than failing the caller —
// an unreferenced orphan is by definition unreachable.
func sweepStoreOrphans(fs FS, dir string, keepShards, keepGens int) (removed []string, errs []error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, []error{err}
	}
	for _, name := range names {
		var n int
		sweep := false
		switch {
		case filepath.Ext(name) == ".tmp":
			sweep = true
		case parseSeq(name, "shard-", ".ifs", &n):
			sweep = n >= keepShards && keepShards >= 0 || keepShards < 0
		case parseSeq(name, "delta-", ".idx", &n):
			sweep = n > keepGens && keepGens >= 0 || keepGens < 0
		case name == indexName || name == manifestName:
			sweep = keepShards < 0
		}
		if !sweep {
			continue
		}
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			errs = append(errs, fmt.Errorf("sweep %s: %w", name, err))
			continue
		}
		removed = append(removed, name)
	}
	return removed, errs
}

// parseSeq matches prefix + digits + suffix and extracts the number.
func parseSeq(name, prefix, suffix string, n *int) bool {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	v := 0
	for i := 0; i < len(mid); i++ {
		c := mid[i]
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + int(c-'0')
	}
	*n = v
	return true
}
