package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"iflex/internal/text"
)

// Delta reports what a committed mutation changed, by document id.
type Delta struct {
	Added   []string `json:"added,omitempty"`
	Updated []string `json:"updated,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// Empty reports whether the delta changed nothing.
func (d *Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Updated) == 0 && len(d.Removed) == 0
}

// Changed returns every id the delta touched (added + updated + removed).
func (d *Delta) Changed() []string {
	out := make([]string, 0, len(d.Added)+len(d.Updated)+len(d.Removed))
	out = append(out, d.Added...)
	out = append(out, d.Updated...)
	out = append(out, d.Removed...)
	return out
}

// Mutation batches document puts and removes against an open DiskStore.
// Commit writes one new generation — a shard of new records plus a
// delta sidecar (tombstones, vocabulary growth, postings) — and updates
// the open store in place: unchanged documents keep their handles and
// ordinals, superseded records are tombstoned, and the token index
// stays consistent without a rebuild. The caller must be quiescent (no
// concurrent reads through the store) across Commit, like SetDocFilter.
type Mutation struct {
	s    *DiskStore
	puts []mutPut
	rems []string
	seen map[string]bool
	done bool
}

type mutPut struct{ id, raw string }

// BeginMutation starts an empty mutation batch.
func (s *DiskStore) BeginMutation() (*Mutation, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("store: mutate: store is closed")
	}
	return &Mutation{s: s, seen: make(map[string]bool)}, nil
}

// Put stages a document write: an add if id is new, a supersede if a
// live record with the same id exists. Each id may appear once per
// mutation.
func (m *Mutation) Put(id, raw string) error {
	if err := m.stage(id); err != nil {
		return err
	}
	m.puts = append(m.puts, mutPut{id: id, raw: raw})
	return nil
}

// Remove stages a document removal; the id must be live.
func (m *Mutation) Remove(id string) error {
	if err := m.stage(id); err != nil {
		return err
	}
	if _, ok := m.s.live[id]; !ok {
		return fmt.Errorf("store: mutate: remove %q: no such document", id)
	}
	m.rems = append(m.rems, id)
	return nil
}

func (m *Mutation) stage(id string) error {
	if m.done {
		return fmt.Errorf("store: mutate: mutation already committed")
	}
	if id == "" {
		return fmt.Errorf("store: mutate: empty document id")
	}
	if m.seen[id] {
		return fmt.Errorf("store: mutate: document %q staged twice", id)
	}
	m.seen[id] = true
	return nil
}

func deltaName(g int) string { return fmt.Sprintf("delta-%04d.idx", g) }

// Commit writes the staged changes as a new generation and applies them
// to the open store. An empty mutation commits nothing and returns an
// empty delta.
func (m *Mutation) Commit() (*Delta, error) {
	if m.done {
		return nil, fmt.Errorf("store: mutate: mutation already committed")
	}
	m.done = true
	s := m.s
	if len(m.puts) == 0 && len(m.rems) == 0 {
		return &Delta{}, nil
	}

	gen := s.man.Generation + 1
	shardIdx := s.man.Shards
	prevDocs := len(s.meta)
	prevVocab := len(s.idx.vocab)

	// Intern new tokens locally so a failed commit leaves the open index
	// untouched; ids continue the store's id space.
	var newTok []string
	localIDs := make(map[string]uint32)
	intern := func(t string) uint32 {
		if id, ok := s.idx.ids[t]; ok {
			return id
		}
		if id, ok := localIDs[t]; ok {
			return id
		}
		id := uint32(prevVocab + len(newTok))
		localIDs[t] = id
		newTok = append(newTok, t)
		return id
	}

	// Encode the new records and collect their postings and TOC.
	var (
		recs     [][]byte
		newMeta  []docMeta
		newPost  = make(map[uint32][]int)
		txtBytes int64
		rawBytes int64
	)
	off := uint64(len(shardMagic) + 4)
	for i, p := range m.puts {
		rec, textLen, blockIDs, err := buildRecord(p.id, p.raw, intern)
		if err != nil {
			return nil, fmt.Errorf("store: mutate: %q: %w", p.id, err)
		}
		ord := prevDocs + i
		for _, tid := range blockIDs {
			newPost[tid] = append(newPost[tid], ord)
		}
		newMeta = append(newMeta, docMeta{
			shard: shardIdx, offset: off,
			recLen: uint32(len(rec)), textLen: uint32(textLen), id: p.id,
		})
		recs = append(recs, rec)
		off += uint64(4 + len(rec))
		txtBytes += int64(textLen)
		rawBytes += int64(len(p.raw))
	}

	// Classify puts and collect tombstones.
	d := &Delta{Removed: append([]string(nil), m.rems...)}
	var tombs []int
	for _, p := range m.puts {
		if old, ok := s.live[p.id]; ok {
			tombs = append(tombs, old)
			d.Updated = append(d.Updated, p.id)
		} else {
			d.Added = append(d.Added, p.id)
		}
	}
	for _, id := range m.rems {
		old, ok := s.live[id]
		if !ok {
			return nil, fmt.Errorf("store: mutate: remove %q: no such document", id)
		}
		tombs = append(tombs, old)
	}
	sort.Ints(tombs)
	sort.Strings(d.Added)
	sort.Strings(d.Updated)
	sort.Strings(d.Removed)

	// Crash-atomic commit order: (1) the generation shard, fsynced; (2)
	// the delta sidecar, via temp + fsync + rename + directory fsync —
	// which also makes the shard's directory entry durable; (3) the
	// manifest, published the same way. The manifest rename is the single
	// commit point: a crash before it leaves the store at the previous
	// generation with (at most) an orphan shard/sidecar/temp file Open
	// sweeps; a crash after it leaves the new generation fully durable.
	// If Commit returns an error the in-memory store is still at the
	// previous generation; the on-disk store is at whichever generation
	// the manifest publish reached (reopening resolves it).
	if err := writeShardFile(s.fs, filepath.Join(s.dir, shardName(shardIdx)), recs, newMeta); err != nil {
		return nil, err
	}
	if err := writeDeltaFile(s.fs, filepath.Join(s.dir, deltaName(gen)), gen, prevDocs, prevDocs+len(recs), prevVocab, tombs, newTok, newPost); err != nil {
		return nil, err
	}

	man := s.man
	man.Generation = gen
	man.Shards = shardIdx + 1
	man.Docs = prevDocs + len(recs)
	man.Vocab = prevVocab + len(newTok)
	if man.BaseDocs == 0 {
		man.BaseDocs = prevDocs
	}
	man.TextBytes += txtBytes
	man.RawBytes += rawBytes
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: mutate: %w", err)
	}
	if err := atomicWriteFile(s.fs, filepath.Join(s.dir, manifestName), append(mb, '\n')); err != nil {
		return nil, fmt.Errorf("store: mutate: %w", err)
	}

	// Apply in place. The shard is reopened read-only like any other.
	f, err := os.Open(filepath.Join(s.dir, shardName(shardIdx)))
	if err != nil {
		return nil, fmt.Errorf("store: mutate: reopen shard: %w", err)
	}
	s.man = man
	s.shards = append(s.shards, f)
	s.mu.Lock()
	for i, nm := range newMeta {
		ord := prevDocs + i
		s.meta = append(s.meta, nm)
		doc := text.NewLazyDocument(nm.id, int(nm.textLen), func() (text.DocContent, error) {
			return s.loadDoc(ord)
		})
		s.docs = append(s.docs, doc)
		s.ord[doc] = ord
		s.lruElem = append(s.lruElem, nil)
		s.tomb = append(s.tomb, false)
	}
	for _, ord := range tombs {
		s.tomb[ord] = true
	}
	s.mu.Unlock()
	for i, t := range newTok {
		s.idx.ids[t] = uint32(prevVocab + i)
		s.idx.vocab = append(s.idx.vocab, t)
	}
	for tid, ords := range newPost {
		s.idx.extra[tid] = append(s.idx.extra[tid], ords...)
	}
	s.idx.cacheReset()
	if err := s.rebuildView(); err != nil {
		return nil, fmt.Errorf("store: mutate: %w", err)
	}
	return d, nil
}

// writeShardFile writes one generation's records as an ordinary shard
// and fsyncs it before returning: the shard must be durable before the
// manifest publish makes it reachable. A crash mid-write leaves a
// partial shard the manifest never references — an orphan Open sweeps.
func writeShardFile(fsys FS, path string, recs [][]byte, meta []docMeta) error {
	f, err := fsys.Create(path)
	if err != nil {
		return fmt.Errorf("store: mutate: create shard: %w", err)
	}
	buf := bufio.NewWriterSize(f, 1<<20)
	var hdr bufWriter
	hdr.str(shardMagic)
	hdr.u32(version)
	buf.Write(hdr.b)
	var toc bufWriter
	toc.u32(uint32(len(recs)))
	for i, rec := range recs {
		var pre bufWriter
		pre.u32(uint32(len(rec)))
		if _, err := buf.Write(pre.b); err != nil {
			return err
		}
		if _, err := buf.Write(rec); err != nil {
			return err
		}
		m := meta[i]
		toc.u64(m.offset)
		toc.u32(m.recLen)
		toc.u32(m.textLen)
		toc.u32(uint32(len(m.id)))
		toc.str(m.id)
	}
	tocOff := uint64(len(hdr.b))
	for _, rec := range recs {
		tocOff += uint64(4 + len(rec))
	}
	if _, err := buf.Write(toc.b); err != nil {
		return err
	}
	var foot bufWriter
	foot.u64(tocOff)
	foot.str(footerMagic)
	if _, err := buf.Write(foot.b); err != nil {
		f.Close()
		return err
	}
	if err := buf.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeDeltaFile writes the generation's sidecar per the layout in
// format.go — integrity footer (CRC + magic) appended, published via
// temp + fsync + rename + directory fsync so a reader can never observe
// a torn sidecar under an intact footer.
func writeDeltaFile(fsys FS, path string, gen, prevDocs, newDocs, prevVocab int, tombs []int, newTok []string, newPost map[uint32][]int) error {
	var w bufWriter
	w.str(deltaMagic)
	w.u32(version)
	w.u32(uint32(gen))
	w.u32(uint32(prevDocs))
	w.u32(uint32(newDocs))
	w.u32(uint32(prevVocab))
	w.u32(uint32(len(tombs)))
	for _, t := range tombs {
		w.u32(uint32(t))
	}
	w.u32(uint32(len(newTok)))
	for _, t := range newTok {
		w.u16(uint16(len(t)))
		w.str(t)
	}
	tids := make([]int, 0, len(newPost))
	for tid := range newPost {
		tids = append(tids, int(tid))
	}
	sort.Ints(tids)
	w.u32(uint32(len(tids)))
	for _, tid := range tids {
		ords := newPost[uint32(tid)]
		var run []byte
		prev := -1
		for _, ord := range ords {
			run = appendDelta(run, ord, prev)
			prev = ord
		}
		w.u32(uint32(tid))
		w.u32(uint32(len(run)))
		w.b = append(w.b, run...)
	}
	w.u32(crc32.ChecksumIEEE(w.b))
	w.str(deltaFootMagic)
	if err := atomicWriteFile(fsys, path, w.b); err != nil {
		return fmt.Errorf("store: mutate: write delta sidecar: %w", err)
	}
	return nil
}

// deltaPatch is a fully parsed and validated sidecar, ready to apply.
// Parsing is separated from application so a torn or corrupt sidecar
// never leaves the open store half-mutated — Open rolls back to the
// previous generation from an untouched in-memory state.
type deltaPatch struct {
	tombs []int
	toks  []string
	posts map[uint32][]int // token id -> sorted ordinals
}

// parseDeltaFile reads generation g's sidecar, verifies the integrity
// footer, and validates every field against the store's current state
// without mutating anything.
func (s *DiskStore) parseDeltaFile(g int) (*deltaPatch, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, deltaName(g)))
	if err != nil {
		return nil, err
	}
	if len(b) < deltaFooterSize || string(b[len(b)-4:]) != deltaFootMagic {
		return nil, fmt.Errorf("%s: missing integrity footer (torn sidecar?)", deltaName(g))
	}
	body := b[:len(b)-deltaFooterSize]
	if crc := binary.LittleEndian.Uint32(b[len(b)-deltaFooterSize:]); crc != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("%s: integrity checksum mismatch (torn sidecar?)", deltaName(g))
	}
	r := bufReader{b: body}
	if string(r.bytes(4, "delta magic")) != deltaMagic {
		return nil, fmt.Errorf("%s: bad magic", deltaName(g))
	}
	if v := r.u32("delta version"); v != version {
		return nil, fmt.Errorf("%s: version %d (want %d)", deltaName(g), v, version)
	}
	if gen := int(r.u32("delta generation")); gen != g {
		return nil, fmt.Errorf("%s: holds generation %d", deltaName(g), gen)
	}
	prevDocs := int(r.u32("delta prevDocs"))
	newDocs := int(r.u32("delta newDocs"))
	prevVocab := int(r.u32("delta prevVocab"))
	if newDocs > len(s.meta) || prevDocs > newDocs {
		return nil, fmt.Errorf("%s: doc counts %d..%d out of range (%d records)", deltaName(g), prevDocs, newDocs, len(s.meta))
	}
	if prevVocab != len(s.idx.vocab) {
		return nil, fmt.Errorf("%s: vocabulary chain broken (%d, index holds %d)", deltaName(g), prevVocab, len(s.idx.vocab))
	}
	p := &deltaPatch{posts: make(map[uint32][]int)}
	nTomb := int(r.u32("tombstone count"))
	for i := 0; i < nTomb; i++ {
		ord := int(r.u32("tombstone"))
		if r.err != nil {
			return nil, r.err
		}
		if ord >= prevDocs {
			return nil, fmt.Errorf("%s: tombstoned ordinal %d out of range", deltaName(g), ord)
		}
		p.tombs = append(p.tombs, ord)
	}
	nVocab := int(r.u32("delta vocab count"))
	for i := 0; i < nVocab; i++ {
		n := int(r.u16("delta token len"))
		tok := string(r.bytes(n, "delta token"))
		if r.err != nil {
			return nil, r.err
		}
		p.toks = append(p.toks, tok)
	}
	nPost := int(r.u32("delta postings count"))
	for i := 0; i < nPost; i++ {
		tid := r.u32("delta token id")
		runLen := int(r.u32("delta run len"))
		run := r.bytes(runLen, "delta run")
		if r.err != nil {
			return nil, r.err
		}
		if int(tid) >= prevVocab+len(p.toks) {
			return nil, fmt.Errorf("%s: posting for unknown token id %d", deltaName(g), tid)
		}
		ords, err := decodePostings(run, newDocs)
		if err != nil {
			return nil, fmt.Errorf("%s: token id %d: %w", deltaName(g), tid, err)
		}
		p.posts[tid] = ords
	}
	if r.err != nil || r.off != len(r.b) {
		return nil, fmt.Errorf("%s: malformed sidecar", deltaName(g))
	}
	return p, nil
}

// applyPatch folds a validated sidecar into the open index state.
func (s *DiskStore) applyPatch(p *deltaPatch) {
	for _, ord := range p.tombs {
		s.tomb[ord] = true
	}
	for _, tok := range p.toks {
		s.idx.ids[tok] = uint32(len(s.idx.vocab))
		s.idx.vocab = append(s.idx.vocab, tok)
	}
	for tid, ords := range p.posts {
		s.idx.extra[tid] = append(s.idx.extra[tid], ords...)
	}
}
