package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"iflex/internal/compact"
	"iflex/internal/text"
)

func buildMutStore(t *testing.T, dir string, pages map[string]string, order []string) {
	t.Helper()
	w, err := Create(dir, Options{ShardDocs: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range order {
		if err := w.Add(id, pages[id]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// postedIDs maps a token's postings to live document ids.
func postedIDs(t *testing.T, s *DiskStore, tok string) map[string]bool {
	t.Helper()
	ords, ok := s.TokenPostings(tok)
	if !ok {
		t.Fatalf("TokenPostings(%q) failed", tok)
	}
	out := map[string]bool{}
	for _, ord := range ords {
		out[s.meta[ord].id] = true
	}
	return out
}

func TestMutationGenerations(t *testing.T) {
	dir := t.TempDir()
	pages := map[string]string{
		"a": "<li><b>Alpha Systems</b><br>New: $10.00</li>",
		"b": "<li><b>Beta Design</b><br>New: $20.00</li>",
		"c": "<li><b>Gamma Theory</b><br>New: $30.00</li>",
		"d": "<li><b>Delta Rules</b><br>New: $40.00</li>",
	}
	buildMutStore(t, dir, pages, []string{"a", "b", "c", "d"})
	s, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	before := map[string]*text.Document{}
	for _, d := range s.Docs() {
		before[d.ID()] = d
	}

	m, err := s.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	// Update b, remove c, add e.
	if err := m.Put("b", "<li><b>Beta Redux</b><br>New: $25.00</li>"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("c"); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("e", "<li><b>Epsilon Words</b><br>New: $50.00</li>"); err != nil {
		t.Fatal(err)
	}
	delta, err := m.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(delta.Added) != "[e]" || fmt.Sprint(delta.Updated) != "[b]" || fmt.Sprint(delta.Removed) != "[c]" {
		t.Fatalf("unexpected delta: %+v", delta)
	}

	check := func(s *DiskStore, label string) {
		t.Helper()
		var ids []string
		for _, d := range s.Docs() {
			ids = append(ids, d.ID())
		}
		if got := fmt.Sprint(ids); got != "[a b d e]" {
			t.Fatalf("%s: live view %v", label, got)
		}
		if s.Len() != 4 || s.NumDocs() != 6 {
			t.Fatalf("%s: Len=%d NumDocs=%d", label, s.Len(), s.NumDocs())
		}
		if got := postedIDs(t, s, "beta"); len(got) != 1 || !got["b"] {
			t.Fatalf("%s: postings for beta = %v", label, got)
		}
		if got := postedIDs(t, s, "redux"); len(got) != 1 || !got["b"] {
			t.Fatalf("%s: postings for redux = %v", label, got)
		}
		if got := postedIDs(t, s, "gamma"); len(got) != 0 {
			t.Fatalf("%s: postings for removed doc's token = %v", label, got)
		}
		if got := postedIDs(t, s, "new"); len(got) != 4 {
			t.Fatalf("%s: postings for shared token = %v", label, got)
		}
		// The updated record reads back the superseding content.
		b, ok := s.DocByID("b")
		if !ok {
			t.Fatalf("%s: DocByID(b) missing", label)
		}
		if toks, ok := s.BlockTokens(b); !ok || !contains(toks, "redux") {
			t.Fatalf("%s: BlockTokens(b) = %v %v", label, toks, ok)
		}
	}
	check(s, "in-place")

	// Unchanged documents keep their handles; the updated one does not.
	for _, d := range s.Docs() {
		switch d.ID() {
		case "a", "d":
			if before[d.ID()] != d {
				t.Fatalf("unchanged doc %q lost its handle", d.ID())
			}
		case "b":
			if before["b"] == d {
				t.Fatal("updated doc b kept its stale handle")
			}
		}
	}

	// A reopened store sees the same corpus.
	s2, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2, "reopened")

	// Second generation: remove the update target again.
	m2, err := s2.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := postedIDs(t, s2, "redux"); len(got) != 0 {
		t.Fatalf("postings after removing updated doc = %v", got)
	}
	s3, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	var ids []string
	for _, d := range s3.Docs() {
		ids = append(ids, d.ID())
	}
	if got := fmt.Sprint(ids); got != "[a d e]" {
		t.Fatalf("gen-2 reopen live view %v", got)
	}
	if s3.Generation() != 2 {
		t.Fatalf("generation = %d", s3.Generation())
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestSpillInvalidateDocs(t *testing.T) {
	d1 := text.NewDocument("doc-1", "alpha beta", nil)
	d2 := text.NewDocument("doc-2", "gamma delta", nil)
	resolve := func(id string) (*text.Document, bool) {
		switch id {
		case "doc-1":
			return d1, true
		case "doc-2":
			return d2, true
		}
		return nil, false
	}
	sp, err := NewSpill(filepath.Join(t.TempDir(), "spill"), resolve)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	mk := func(d *text.Document) *compact.Table {
		tb := compact.NewTable("x")
		tb.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(d.WholeSpan())}})
		return tb
	}
	if _, err := sp.Save("k1", mk(d1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Save("k2", mk(d2)); err != nil {
		t.Fatal(err)
	}
	if n := sp.InvalidateDocs(map[string]bool{"doc-1": true}); n != 1 {
		t.Fatalf("InvalidateDocs dropped %d spills", n)
	}
	if _, ok, _ := sp.Load("k1"); ok {
		t.Fatal("spill touching invalidated doc still loadable")
	}
	if tb, ok, err := sp.Load("k2"); err != nil || !ok || len(tb.Tuples) != 1 {
		t.Fatalf("untouched spill lost: %v %v", ok, err)
	}
	// No stale files left behind.
	ents, err := os.ReadDir(sp.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d spill files on disk, want 1", len(ents))
	}
}
