package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"iflex/internal/compact"
	"iflex/internal/text"
)

// Spill demotes compact tables to disk so a cache-budget eviction can
// keep a table recoverable instead of dropping it. Tables are encoded
// structurally — column names, tuple/cell/assignment shape, and spans as
// (document, start, end) references — and decoded against a document
// resolver, so reloaded spans point at the *same* document handles the
// engine keys its memos and comparisons by. Encoding and decoding
// preserve multiset order exactly: a reloaded table is structurally
// identical to what was saved.
type Spill struct {
	dir     string
	fs      FS
	resolve func(id string) (*text.Document, bool)

	mu    sync.Mutex
	files map[string]spillFile // key -> file
	seq   int
	bytes int64
}

type spillFile struct {
	name  string
	bytes int64
	docs  []string // ids of every document the spilled table references
}

// NewSpill creates a spill area rooted at dir (created if missing; files
// are cleaned up by Close). resolve maps a document ID back to its
// handle; every document referenced by a spilled table must resolve.
//
// Stale spill-*.tbl files left behind by a crashed process are swept at
// construction: the sequence counter restarts at zero, so orphans from a
// previous run would never be reclaimed and fresh files could collide
// with their names. Spills are pure cache — nothing of value is lost.
func NewSpill(dir string, resolve func(id string) (*text.Document, bool)) (*Spill, error) {
	return NewSpillFS(dir, resolve, RealFS(false))
}

// NewSpillFS is NewSpill with an explicit filesystem seam. Spill files
// are ephemeral (a restarted process sweeps and rebuilds them), so the
// default seam never fsyncs.
func NewSpillFS(dir string, resolve func(id string) (*text.Document, bool), fsys FS) (*Spill, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: spill dir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: spill dir: %w", err)
	}
	for _, name := range names {
		var n int
		if !parseSeq(name, "spill-", ".tbl", &n) {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("store: sweeping stale spill %s: %w", name, err)
		}
	}
	return &Spill{dir: dir, fs: fsys, resolve: resolve, files: make(map[string]spillFile)}, nil
}

// Save writes the table under key, replacing any previous spill for the
// same key, and returns the on-disk size. Tables carrying a Degraded
// report are refused: only clean intermediates may be demoted (a
// degraded table must never be silently resurrected as authoritative).
func (sp *Spill) Save(key string, t *compact.Table) (int64, error) {
	if t.Degraded != nil {
		return 0, fmt.Errorf("store: refusing to spill degraded table")
	}
	b, docs, err := encodeTable(t)
	if err != nil {
		return 0, err
	}
	sp.mu.Lock()
	sp.seq++
	name := fmt.Sprintf("spill-%06d.tbl", sp.seq)
	prev, had := sp.files[key]
	sp.files[key] = spillFile{name: name, bytes: int64(len(b)), docs: docs}
	sp.bytes += int64(len(b))
	if had {
		sp.bytes -= prev.bytes
	}
	sp.mu.Unlock()
	if err := sp.writeFile(name, b); err != nil {
		sp.Drop(key)
		return 0, fmt.Errorf("store: spill write: %w", err)
	}
	if had {
		sp.fs.Remove(filepath.Join(sp.dir, prev.name))
	}
	return int64(len(b)), nil
}

// writeFile writes one spill file through the seam. No temp file, no
// sync: a torn spill is indistinguishable from a dropped cache entry,
// and the restart sweep removes it either way.
func (sp *Spill) writeFile(name string, b []byte) error {
	f, err := sp.fs.Create(filepath.Join(sp.dir, name))
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads the table spilled under key. ok is false when no spill
// exists for the key; an unreadable or undecodable spill is an error.
func (sp *Spill) Load(key string) (*compact.Table, bool, error) {
	sp.mu.Lock()
	f, ok := sp.files[key]
	sp.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	b, err := os.ReadFile(filepath.Join(sp.dir, f.name))
	if err != nil {
		return nil, false, fmt.Errorf("store: spill read: %w", err)
	}
	t, err := decodeTable(b, sp.resolve)
	if err != nil {
		return nil, false, fmt.Errorf("store: spill decode: %w", err)
	}
	return t, true, nil
}

// Drop removes the spill for key, if any.
func (sp *Spill) Drop(key string) {
	sp.mu.Lock()
	f, ok := sp.files[key]
	delete(sp.files, key)
	if ok {
		sp.bytes -= f.bytes
	}
	sp.mu.Unlock()
	if ok {
		sp.fs.Remove(filepath.Join(sp.dir, f.name))
	}
}

// InvalidateDocs drops every spilled table that references any of the
// given document ids and returns how many were dropped. After a corpus
// mutation, spills touching changed documents hold stale spans (and
// would resolve against superseded handles); dropping them forces a
// re-evaluation instead of a resurrect.
func (sp *Spill) InvalidateDocs(ids map[string]bool) int {
	if len(ids) == 0 {
		return 0
	}
	sp.mu.Lock()
	var victims []spillFile
	for key, f := range sp.files {
		for _, d := range f.docs {
			if ids[d] {
				victims = append(victims, f)
				delete(sp.files, key)
				sp.bytes -= f.bytes
				break
			}
		}
	}
	sp.mu.Unlock()
	for _, f := range victims {
		sp.fs.Remove(filepath.Join(sp.dir, f.name))
	}
	return len(victims)
}

// Bytes returns the total bytes currently spilled.
func (sp *Spill) Bytes() int64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.bytes
}

// Len returns the number of spilled tables.
func (sp *Spill) Len() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.files)
}

// Close deletes all spill files.
func (sp *Spill) Close() error {
	sp.mu.Lock()
	files := sp.files
	sp.files = make(map[string]spillFile)
	sp.bytes = 0
	sp.mu.Unlock()
	var first error
	for _, f := range files {
		if err := sp.fs.Remove(filepath.Join(sp.dir, f.name)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

const spillMagic = "IFSP"

// encodeTable serializes a compact table and returns the distinct
// document ids it references. IDs are interned in a per-file string
// table; assignments store (docRef, mode, start, end).
func encodeTable(t *compact.Table) ([]byte, []string, error) {
	var w bufWriter
	w.str(spillMagic)
	w.u32(version)

	docIDs := make(map[string]uint32)
	var docs []string
	docRef := func(d *text.Document) uint32 {
		id := d.ID()
		if r, ok := docIDs[id]; ok {
			return r
		}
		r := uint32(len(docs))
		docIDs[id] = r
		docs = append(docs, id)
		return r
	}
	// Body first (interning discovers the doc table), doc table after;
	// the decoder reads the doc-table offset from the header.
	var body bufWriter
	body.u32(uint32(len(t.Cols)))
	for _, c := range t.Cols {
		body.u16(uint16(len(c)))
		body.str(c)
	}
	body.u32(uint32(len(t.Tuples)))
	for _, tp := range t.Tuples {
		flag := byte(0)
		if tp.Maybe {
			flag = 1
		}
		body.b = append(body.b, flag)
		body.u16(uint16(len(tp.Cells)))
		for _, cell := range tp.Cells {
			cflag := byte(0)
			if cell.Expand {
				cflag = 1
			}
			body.b = append(body.b, cflag)
			body.u32(uint32(len(cell.Assigns)))
			for _, a := range cell.Assigns {
				body.b = append(body.b, byte(a.Mode))
				d := a.Span.Doc()
				if d == nil {
					return nil, nil, fmt.Errorf("store: spill: assignment with no document")
				}
				body.u32(docRef(d))
				body.u32(uint32(a.Span.Start()))
				body.u32(uint32(a.Span.End()))
			}
		}
	}
	w.u32(uint32(len(body.b)))
	w.b = append(w.b, body.b...)
	w.u32(uint32(len(docs)))
	for _, id := range docs {
		w.u16(uint16(len(id)))
		w.str(id)
	}
	return w.b, docs, nil
}

// decodeTable reconstructs a table, resolving document references
// through resolve.
func decodeTable(b []byte, resolve func(id string) (*text.Document, bool)) (*compact.Table, error) {
	r := bufReader{b: b}
	if string(r.bytes(4, "magic")) != spillMagic {
		return nil, fmt.Errorf("bad spill magic")
	}
	if v := r.u32("version"); v != version {
		return nil, fmt.Errorf("spill version %d (want %d)", v, version)
	}
	bodyLen := int(r.u32("body length"))
	body := bufReader{b: r.bytes(bodyLen, "body")}
	nDocs := int(r.u32("doc count"))
	docs := make([]*text.Document, nDocs)
	for i := 0; i < nDocs; i++ {
		idLen := int(r.u16("doc id len"))
		id := string(r.bytes(idLen, "doc id"))
		if r.err != nil {
			return nil, r.err
		}
		d, ok := resolve(id)
		if !ok {
			return nil, fmt.Errorf("spilled table references unknown document %q", id)
		}
		docs[i] = d
	}
	if r.err != nil {
		return nil, r.err
	}

	nCols := int(body.u32("col count"))
	cols := make([]string, nCols)
	for i := range cols {
		n := int(body.u16("col len"))
		cols[i] = string(body.bytes(n, "col name"))
	}
	t := compact.NewTable(cols...)
	nTuples := int(body.u32("tuple count"))
	if body.err == nil && nTuples > 0 {
		t.Tuples = make([]compact.Tuple, 0, nTuples)
	}
	for i := 0; i < nTuples && body.err == nil; i++ {
		var tp compact.Tuple
		tp.Maybe = body.bytes(1, "maybe flag")[0] != 0
		nCells := int(body.u16("cell count"))
		tp.Cells = make([]compact.Cell, nCells)
		for ci := 0; ci < nCells && body.err == nil; ci++ {
			fb := body.bytes(1, "expand flag")
			if body.err != nil {
				break
			}
			cell := compact.Cell{Expand: fb[0] != 0}
			nAsn := int(body.u32("assign count"))
			if body.err == nil && nAsn > 0 {
				cell.Assigns = make([]text.Assignment, 0, nAsn)
			}
			for ai := 0; ai < nAsn && body.err == nil; ai++ {
				mb := body.bytes(1, "mode")
				ref := int(body.u32("doc ref"))
				start := int(body.u32("span start"))
				end := int(body.u32("span end"))
				if body.err != nil {
					break
				}
				if ref >= len(docs) {
					return nil, fmt.Errorf("doc ref %d out of range", ref)
				}
				d := docs[ref]
				if start < 0 || end > d.Len() || start > end {
					return nil, fmt.Errorf("span [%d,%d) out of range for doc %q", start, end, d.ID())
				}
				cell.Assigns = append(cell.Assigns, text.Assignment{
					Mode: text.Mode(mb[0]),
					Span: d.Span(start, end),
				})
			}
			cell.Assigns = cell.Assigns[:len(cell.Assigns):len(cell.Assigns)]
			tp.Cells[ci] = cell
		}
		t.Tuples = append(t.Tuples, tp)
	}
	if body.err != nil {
		return nil, body.err
	}
	if body.off != len(body.b) {
		return nil, fmt.Errorf("trailing bytes in spill body")
	}
	return t, nil
}
