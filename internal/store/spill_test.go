package store

import (
	"testing"

	"iflex/internal/compact"
	"iflex/internal/markup"
	"iflex/internal/text"
)

func spillFixture(t *testing.T) (*Spill, []*text.Document) {
	t.Helper()
	docs := []*text.Document{
		markup.MustParse("a", "<b>Cozy studio</b> near campus rent $500"),
		markup.MustParse("b", "Large <i>house</i> with garden rent $1,200"),
	}
	byID := map[string]*text.Document{}
	for _, d := range docs {
		byID[d.ID()] = d
	}
	sp, err := NewSpill(t.TempDir(), func(id string) (*text.Document, bool) {
		d, ok := byID[id]
		return d, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	return sp, docs
}

func spillSample(docs []*text.Document) *compact.Table {
	tb := compact.NewTable("x", "price")
	tb.Append(compact.Tuple{Cells: []compact.Cell{
		compact.ExactCell(docs[0].WholeSpan()),
		compact.ExpandCell(text.ContainOf(docs[0].Span(21, 31))),
	}})
	tb.Append(compact.Tuple{Maybe: true, Cells: []compact.Cell{
		compact.ContainCell(docs[1].Span(0, 11)),
		{Assigns: []text.Assignment{
			text.ExactOf(docs[1].Span(29, 35)),
			text.ContainOf(docs[1].WholeSpan()),
		}},
	}})
	return tb
}

func TestSpillRoundTrip(t *testing.T) {
	sp, docs := spillFixture(t)
	defer sp.Close()
	tb := spillSample(docs)

	n, err := sp.Save("k1", tb)
	if err != nil || n <= 0 {
		t.Fatalf("Save: %d %v", n, err)
	}
	if sp.Bytes() != n || sp.Len() != 1 {
		t.Fatalf("accounting: %d bytes, %d tables", sp.Bytes(), sp.Len())
	}
	got, ok, err := sp.Load("k1")
	if err != nil || !ok {
		t.Fatalf("Load: %v %v", ok, err)
	}
	if got.Canonical() != tb.Canonical() {
		t.Fatalf("round trip drift:\n%s\nvs\n%s", got.Canonical(), tb.Canonical())
	}
	// Reloaded spans must reference the SAME document handles: engine
	// memos and comparisons are keyed by handle identity.
	for i, tp := range got.Tuples {
		for j, cell := range tp.Cells {
			for k, a := range cell.Assigns {
				want := tb.Tuples[i].Cells[j].Assigns[k]
				if a.Span.Doc() != want.Span.Doc() {
					t.Fatalf("tuple %d cell %d assign %d: new doc handle", i, j, k)
				}
				if a.Mode != want.Mode || !a.Span.Equal(want.Span) {
					t.Fatalf("tuple %d cell %d assign %d: %v != %v", i, j, k, a, want)
				}
			}
		}
	}
	if got.Tuples[1].Maybe != true || got.Tuples[0].Cells[1].Expand != true {
		t.Fatal("maybe/expand flags lost")
	}
}

func TestSpillReplaceDropClose(t *testing.T) {
	sp, docs := spillFixture(t)
	tb := spillSample(docs)
	if _, err := sp.Save("k", tb); err != nil {
		t.Fatal(err)
	}
	small := compact.NewTable("x")
	small.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(docs[0].Span(0, 4))}})
	n2, err := sp.Save("k", small)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Bytes() != n2 || sp.Len() != 1 {
		t.Fatalf("replace accounting: %d bytes, %d tables", sp.Bytes(), sp.Len())
	}
	got, ok, _ := sp.Load("k")
	if !ok || got.Canonical() != small.Canonical() {
		t.Fatal("replace did not take effect")
	}
	sp.Drop("k")
	if _, ok, _ := sp.Load("k"); ok {
		t.Fatal("load after drop succeeded")
	}
	if sp.Bytes() != 0 || sp.Len() != 0 {
		t.Fatal("drop accounting")
	}
	if _, err := sp.Save("k2", tb); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := sp.Load("k2"); ok {
		t.Fatal("load after close succeeded")
	}
}

func TestSpillRefusesDegraded(t *testing.T) {
	sp, docs := spillFixture(t)
	defer sp.Close()
	tb := spillSample(docs)
	tb.Degraded = &compact.Degraded{}
	if _, err := sp.Save("k", tb); err == nil {
		t.Fatal("spilled a degraded table")
	}
}

func TestSpillUnknownDocFailsLoad(t *testing.T) {
	docs := []*text.Document{markup.MustParse("a", "hello world")}
	sp, err := NewSpill(t.TempDir(), func(id string) (*text.Document, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	tb := compact.NewTable("x")
	tb.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(docs[0].WholeSpan())}})
	if _, err := sp.Save("k", tb); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp.Load("k"); err == nil {
		t.Fatal("load resolved an unknown document")
	}
}
