// Package store is the document-store abstraction behind corpus-scale
// evaluation: a narrow interface over a set of documents, with an
// in-memory implementation (MemStore) for small corpora and a sharded,
// file-backed implementation (DiskStore) that keeps only a bounded set
// of pages resident and materializes text.Document token/line indexes
// lazily per document.
//
// A disk store is built once at ingest by a Writer, which also persists
// an inverted token index (tokens.idx) over the blocking tokens of every
// page. The engine's shared-token prefilter and simjoin blocking consult
// that index directly — see the BlockTokens/NormTokens/DocOrdinal/
// TokenPostings methods, which match the engine's DocIndex and
// PostingsIndex interfaces — instead of re-tokenizing the corpus on
// every run. Tokenization at ingest uses the exact functions the engine
// would apply at query time (similarity.Tokens over the page text for
// blocking; similarity.NormalizedTokens over the normalized whole-page
// text for the prefilter), so consulting the index is byte-identical to
// computing on the fly.
package store

import (
	"sort"
	"sync"

	"iflex/internal/similarity"
	"iflex/internal/text"
)

// Store is a handle on a corpus of documents. Document handles are
// stable for the lifetime of the store (the engine keys caches and
// quarantine state by handle identity); a file-backed store may drop and
// re-materialize document *content* behind the handles at any time.
type Store interface {
	// Len returns the number of documents.
	Len() int
	// Doc returns the i'th document handle (0 <= i < Len()).
	Doc(i int) *text.Document
	// Docs returns all document handles in ordinal order. The returned
	// slice is shared; callers must not modify it.
	Docs() []*text.Document
	// Close releases the store's resources. Document content accessed
	// after Close may fail (surfacing as a per-document load fault).
	Close() error
}

// MemStore is the trivial Store over an in-memory document slice — the
// corpus shape the engine always had. It also serves the token-index
// interfaces by tokenizing on first use, which lets differential tests
// drive the engine's index-consulting paths without touching disk.
type MemStore struct {
	docs []*text.Document

	once     sync.Once
	ord      map[*text.Document]int
	blockTok [][]string       // per ordinal: distinct sorted blocking tokens
	normTok  [][]string       // per ordinal: ordered normalized tokens
	postings map[string][]int // blocking token -> sorted doc ordinals
}

// NewMemStore wraps documents in a Store. The slice is not copied.
func NewMemStore(docs []*text.Document) *MemStore {
	return &MemStore{docs: docs}
}

// Len returns the number of documents.
func (m *MemStore) Len() int { return len(m.docs) }

// Doc returns the i'th document.
func (m *MemStore) Doc(i int) *text.Document { return m.docs[i] }

// Docs returns all documents in ordinal order.
func (m *MemStore) Docs() []*text.Document { return m.docs }

// Close is a no-op for the in-memory store.
func (m *MemStore) Close() error { return nil }

// index tokenizes every document once, on first index use.
func (m *MemStore) index() {
	m.once.Do(func() {
		m.ord = make(map[*text.Document]int, len(m.docs))
		m.blockTok = make([][]string, len(m.docs))
		m.normTok = make([][]string, len(m.docs))
		m.postings = make(map[string][]int)
		for i, d := range m.docs {
			m.ord[d] = i
			txt := d.Text()
			m.blockTok[i] = DistinctTokens(txt)
			m.normTok[i] = similarity.NormalizedTokens(d.WholeSpan().NormText())
			for _, t := range m.blockTok[i] {
				m.postings[t] = append(m.postings[t], i)
			}
		}
	})
}

// BlockTokens returns the distinct blocking tokens of d (the token set
// simjoin blocking uses), or false if d is not in this store.
func (m *MemStore) BlockTokens(d *text.Document) ([]string, bool) {
	m.index()
	i, ok := m.ord[d]
	if !ok {
		return nil, false
	}
	return m.blockTok[i], true
}

// NormTokens returns the ordered normalized token sequence of the whole
// document (the sequence the prefilter and similarity p-functions use),
// or false if d is not in this store.
func (m *MemStore) NormTokens(d *text.Document) ([]string, bool) {
	m.index()
	i, ok := m.ord[d]
	if !ok {
		return nil, false
	}
	return m.normTok[i], true
}

// DocOrdinal returns d's position in Docs(), or false if absent.
func (m *MemStore) DocOrdinal(d *text.Document) (int, bool) {
	m.index()
	i, ok := m.ord[d]
	return i, ok
}

// NumDocs returns the number of documents (the ordinal space size).
func (m *MemStore) NumDocs() int { return len(m.docs) }

// TokenPostings returns the sorted ordinals of documents whose blocking
// token set contains tok. ok is false only when the index cannot answer
// (never for MemStore); an indexed token with no documents returns an
// empty list with ok true.
func (m *MemStore) TokenPostings(tok string) ([]int, bool) {
	m.index()
	return m.postings[tok], true
}

// DistinctTokens returns the sorted distinct similarity.Tokens of s —
// the per-document token set the blocking index is built from.
func DistinctTokens(s string) []string {
	toks := similarity.Tokens(s)
	if len(toks) == 0 {
		return nil
	}
	sort.Strings(toks)
	out := toks[:1]
	for _, t := range toks[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}
