package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"iflex/internal/markup"
	"iflex/internal/text"
)

func samplePages(n int) (ids, raws []string) {
	for i := 0; i < n; i++ {
		ids = append(ids, fmt.Sprintf("page-%04d", i))
		raws = append(raws, fmt.Sprintf(
			"<title>Page %d</title>\n<h2>Section %d</h2>\n<p>The <b>Widget %d</b> costs <i>$%d.50</i> at <a href=\"http://shop/%d\">Shop %d</a>.</p>\n<ul><li>alpha beta %d</li><li>gamma</li></ul>",
			i, i%3, i, 10+i, i, i%5, i))
	}
	return ids, raws
}

func buildStore(t *testing.T, dir string, ids, raws []string, shardDocs int) {
	t.Helper()
	w, err := Create(dir, Options{ShardDocs: shardDocs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if err := w.Add(ids[i], raws[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ids, raws := samplePages(25)
	buildStore(t, dir, ids, raws, 7) // several shards incl. a partial one

	s, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 25 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Manifest().Shards != 4 {
		t.Fatalf("shards = %d", s.Manifest().Shards)
	}
	for i := range ids {
		d := s.Doc(i)
		want := markup.MustParse(ids[i], raws[i])
		if d.ID() != want.ID() || d.Len() != want.Len() {
			t.Fatalf("doc %d: ID/Len mismatch (%q/%d vs %q/%d)", i, d.ID(), d.Len(), want.ID(), want.Len())
		}
		if d.Loaded() {
			t.Fatalf("doc %d resident before first touch", i)
		}
		if d.Text() != want.Text() {
			t.Fatalf("doc %d: text mismatch", i)
		}
		if !reflect.DeepEqual(d.Marks(), want.Marks()) {
			t.Fatalf("doc %d: marks mismatch", i)
		}
		if !reflect.DeepEqual(d.Tokens(), want.Tokens()) {
			t.Fatalf("doc %d: tokens mismatch", i)
		}
		if !reflect.DeepEqual(d.Links(), want.Links()) {
			t.Fatalf("doc %d: links mismatch", i)
		}
	}
}

func TestDiskStoreTokenIndexMatchesMem(t *testing.T) {
	dir := t.TempDir()
	ids, raws := samplePages(12)
	buildStore(t, dir, ids, raws, 5)

	s, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	eager := make([]*text.Document, len(ids))
	for i := range ids {
		eager[i] = markup.MustParse(ids[i], raws[i])
	}
	mem := NewMemStore(eager)

	toks := map[string]bool{}
	for i, d := range s.Docs() {
		bt, ok := s.BlockTokens(d)
		if !ok {
			t.Fatalf("doc %d: BlockTokens not ok", i)
		}
		wantBT, _ := mem.BlockTokens(eager[i])
		if !reflect.DeepEqual(bt, wantBT) {
			t.Fatalf("doc %d: block tokens %v != %v", i, bt, wantBT)
		}
		nt, ok := s.NormTokens(d)
		if !ok {
			t.Fatalf("doc %d: NormTokens not ok", i)
		}
		wantNT, _ := mem.NormTokens(eager[i])
		if !reflect.DeepEqual(nt, wantNT) {
			t.Fatalf("doc %d: norm tokens %v != %v", i, nt, wantNT)
		}
		if d.Loaded() {
			t.Fatalf("doc %d: token queries paged the document in", i)
		}
		for _, tok := range bt {
			toks[tok] = true
		}
		if ord, ok := s.DocOrdinal(d); !ok || ord != i {
			t.Fatalf("doc %d: ordinal %d %v", i, ord, ok)
		}
	}
	for tok := range toks {
		got, ok := s.TokenPostings(tok)
		if !ok {
			t.Fatalf("postings(%q) not ok", tok)
		}
		want, _ := mem.TokenPostings(tok)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("postings(%q) = %v, want %v", tok, got, want)
		}
	}
	if got, ok := s.TokenPostings("zzzunseen"); !ok || got != nil {
		t.Fatalf("postings of unseen token: %v %v", got, ok)
	}
}

func TestDiskStoreResidentBudget(t *testing.T) {
	dir := t.TempDir()
	ids, raws := samplePages(40)
	buildStore(t, dir, ids, raws, 16)

	s, err := Open(dir, OpenOptions{ResidentBudget: 4 * estBytes(120)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, d := range s.Docs() {
		_ = d.Text()
	}
	// Trimming is asynchronous; wait for it to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resident := 0
		for _, d := range s.Docs() {
			if d.Loaded() {
				resident++
			}
		}
		if resident < s.Len()/2 || time.Now().After(deadline) {
			if resident >= s.Len()/2 {
				t.Fatalf("budget never enforced: %d/%d resident", resident, s.Len())
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.Releases() == 0 {
		t.Fatal("no releases recorded")
	}
	// Released pages re-materialize transparently and identically.
	for i, d := range s.Docs() {
		if d.Text() != markup.MustParse(ids[i], raws[i]).Text() {
			t.Fatalf("doc %d text drifted after release/reload", i)
		}
	}
}

func TestDiskStoreCorruptShardFaultsOnLoad(t *testing.T) {
	dir := t.TempDir()
	ids, raws := samplePages(6)
	buildStore(t, dir, ids, raws, 100)

	// Flip bytes inside the first document's raw markup region.
	path := filepath.Join(dir, shardName(0))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := bytes.Index(b, []byte(raws[5]))
	if off < 0 {
		t.Fatal("raw markup of doc 5 not found in shard")
	}
	for i := 0; i < 8; i++ {
		b[off+10+i] ^= 0xFF
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err) // TOC is intact; corruption is inside a record
	}
	defer s.Close()

	// The undamaged documents still load.
	if s.Doc(0).Text() == "" {
		t.Fatal("doc 0 unreadable")
	}
	// The damaged one panics with a LoadError naming the document.
	func() {
		defer func() {
			le, ok := recover().(*text.LoadError)
			if !ok {
				t.Fatalf("expected *text.LoadError, got %v", le)
			}
			if le.Doc != ids[5] {
				t.Fatalf("fault names %q, want %q", le.Doc, ids[5])
			}
		}()
		_ = s.Doc(5).Text()
	}()
}

// mutateOnce commits the standard scenario mutation (update b, remove
// c, add e) to the store at dir, bringing it to the next generation.
func mutateOnce(t *testing.T, dir string) {
	t.Helper()
	s, err := Open(dir, OpenOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, err := s.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("b", "<li><b>Beta Redux</b><br>New: $25.00</li>"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("c"); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("e", "<li><b>Epsilon Words</b><br>New: $50.00</li>"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(); err != nil {
		t.Fatal(err)
	}
}

// truncateFile cuts the file at dir/name down to n bytes (n < 0 counts
// from the end).
func truncateFile(t *testing.T, dir, name string, n int) {
	t.Helper()
	path := filepath.Join(dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n < 0 {
		n = len(b) + n
	}
	if n < 0 || n > len(b) {
		t.Fatalf("truncate %s to %d (have %d)", name, n, len(b))
	}
	if err := os.WriteFile(path, b[:n], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenCorruptionRecovery is the torn/truncated-file table: a damaged
// manifest fails loudly, a damaged final-generation sidecar rolls the
// store back to the previous generation, and a damaged earlier sidecar
// (which later generations build on) fails loudly. Open never misreads.
func TestOpenCorruptionRecovery(t *testing.T) {
	pages := map[string]string{
		"a": "<li><b>Alpha Systems</b><br>New: $10.00</li>",
		"b": "<li><b>Beta Design</b><br>New: $20.00</li>",
		"c": "<li><b>Gamma Theory</b><br>New: $30.00</li>",
		"d": "<li><b>Delta Rules</b><br>New: $40.00</li>",
	}
	order := []string{"a", "b", "c", "d"}

	tests := []struct {
		name    string
		gens    int // mutations committed before mangling
		mangle  func(t *testing.T, dir string)
		wantErr bool
		wantGen int    // on successful open
		wantIDs string // live view on successful open
	}{
		{
			name: "manifest missing",
			mangle: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
		{
			name:    "manifest truncated mid-JSON",
			mangle:  func(t *testing.T, dir string) { truncateFile(t, dir, manifestName, 40) },
			wantErr: true,
		},
		{
			name: "manifest garbage",
			mangle: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{\"version\": junk"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
		{
			name:    "last sidecar missing",
			gens:    1,
			mangle:  func(t *testing.T, dir string) { os.Remove(filepath.Join(dir, deltaName(1))) },
			wantGen: 0, wantIDs: "[a b c d]",
		},
		{
			name:    "last sidecar truncated to stub",
			gens:    1,
			mangle:  func(t *testing.T, dir string) { truncateFile(t, dir, deltaName(1), 3) },
			wantGen: 0, wantIDs: "[a b c d]",
		},
		{
			name:    "last sidecar torn mid-body",
			gens:    1,
			mangle:  func(t *testing.T, dir string) { truncateFile(t, dir, deltaName(1), -11) },
			wantGen: 0, wantIDs: "[a b c d]",
		},
		{
			name: "last sidecar checksum mismatch",
			gens: 1,
			mangle: func(t *testing.T, dir string) {
				path := filepath.Join(dir, deltaName(1))
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				b[len(b)/2] ^= 0xFF
				if err := os.WriteFile(path, b, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantGen: 0, wantIDs: "[a b c d]",
		},
		{
			name:    "second-generation sidecar torn rolls back one step",
			gens:    2,
			mangle:  func(t *testing.T, dir string) { truncateFile(t, dir, deltaName(2), -11) },
			wantGen: 1, wantIDs: "[a b d e]",
		},
		{
			name:    "earlier sidecar torn fails loudly",
			gens:    2,
			mangle:  func(t *testing.T, dir string) { truncateFile(t, dir, deltaName(1), -11) },
			wantErr: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			buildMutStore(t, dir, pages, order)
			for g := 0; g < tc.gens; g++ {
				if g == 0 {
					mutateOnce(t, dir) // update b, remove c, add e
				} else {
					s, err := Open(dir, OpenOptions{NoSync: true})
					if err != nil {
						t.Fatal(err)
					}
					m, err := s.BeginMutation()
					if err != nil {
						t.Fatal(err)
					}
					if err := m.Remove("b"); err != nil {
						t.Fatal(err)
					}
					if _, err := m.Commit(); err != nil {
						t.Fatal(err)
					}
					s.Close()
				}
			}
			tc.mangle(t, dir)
			s, err := Open(dir, OpenOptions{NoSync: true})
			if tc.wantErr {
				if err == nil {
					s.Close()
					t.Fatal("Open succeeded over corruption that cannot be recovered")
				}
				return
			}
			if err != nil {
				t.Fatalf("Open did not recover: %v", err)
			}
			defer s.Close()
			if s.Generation() != tc.wantGen {
				t.Fatalf("recovered to generation %d, want %d", s.Generation(), tc.wantGen)
			}
			var ids []string
			for _, d := range s.Docs() {
				ids = append(ids, d.ID())
			}
			if got := fmt.Sprint(ids); got != tc.wantIDs {
				t.Fatalf("recovered live view %v, want %v", got, tc.wantIDs)
			}
			if len(s.Recovery()) == 0 {
				t.Fatal("recovery happened but Recovery() reports nothing")
			}
			// The rollback is durable: a second open is clean and identical.
			s2, err := Open(dir, OpenOptions{NoSync: true})
			if err != nil {
				t.Fatalf("second open after rollback: %v", err)
			}
			defer s2.Close()
			if len(s2.Recovery()) != 0 {
				t.Fatalf("second open still repairing: %v", s2.Recovery())
			}
			if s2.Generation() != tc.wantGen {
				t.Fatalf("second open at generation %d", s2.Generation())
			}
		})
	}
}

// TestOpenSweepsOrphans drops crashed-commit debris next to a healthy
// store and checks Open ignores and removes it without touching
// unrelated files.
func TestOpenSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	ids, raws := samplePages(5)
	buildStore(t, dir, ids, raws, 3)
	for _, name := range []string{"manifest.json.tmp", shardName(7), deltaName(3), "tokens.idx.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "truth.txt"), []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, OpenOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if len(s.Recovery()) != 4 {
		t.Fatalf("Recovery() = %v, want 4 sweeps", s.Recovery())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name()] = true
	}
	for _, gone := range []string{"manifest.json.tmp", shardName(7), deltaName(3), "tokens.idx.tmp"} {
		if names[gone] {
			t.Fatalf("orphan %s survived Open", gone)
		}
	}
	if !names["truth.txt"] {
		t.Fatal("unrelated file swept")
	}
}

func TestWriterRejectsExistingStore(t *testing.T) {
	dir := t.TempDir()
	ids, raws := samplePages(2)
	buildStore(t, dir, ids, raws, 10)
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create over an existing store succeeded")
	}
}
