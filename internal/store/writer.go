package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"iflex/internal/markup"
	"iflex/internal/similarity"
)

// Manifest describes a disk store; it is written as manifest.json at
// ingest and validated at Open. Counts let tools report store shape
// without opening shards.
type Manifest struct {
	Version   int   `json:"version"`
	Docs      int   `json:"docs"`
	Shards    int   `json:"shards"`
	ShardDocs int   `json:"shard_docs"`
	Vocab     int   `json:"vocab"`
	TextBytes int64 `json:"text_bytes"`
	RawBytes  int64 `json:"raw_bytes"`
	// Generation counts committed mutations (0 for a freshly ingested
	// store). Each generation adds one shard of new/superseding records
	// plus a delta sidecar (tombstones, vocabulary growth, postings).
	Generation int `json:"generation,omitempty"`
	// BaseDocs is the ordinal count covered by tokens.idx — the store's
	// size before its first mutation. 0 means the store has never been
	// mutated and tokens.idx covers all Docs.
	BaseDocs int `json:"base_docs,omitempty"`
}

// Options configures ingest.
type Options struct {
	// ShardDocs is the number of documents per shard file (default 2048).
	ShardDocs int
	// NoSync skips the fsyncs in the commit protocol (temp files and the
	// rename-publish stay). The default — sync on — guarantees a store
	// whose Close returned nil survives a crash; with NoSync a crash may
	// lose it, but Open still never sees a torn store on filesystems with
	// atomic rename.
	NoSync bool
	// FS overrides the filesystem seam (tests/crash injection). nil means
	// the real filesystem honouring NoSync; when set, NoSync is ignored
	// (the FS decides what Sync does).
	FS FS
}

// Writer streams documents into a new disk store: shard files plus the
// persistent inverted token index. Documents are assigned ordinals in
// Add order. Memory stays bounded by the vocabulary and the (delta-
// compressed) postings, never by the corpus text.
type Writer struct {
	dir  string
	opts Options
	fs   FS

	shard     File
	shardBuf  *bufio.Writer
	shardIdx  int
	shardOff  uint64
	shardTOC  bufWriter
	shardDocs int

	vocab    []string          // token id -> token
	vocabIDs map[string]uint32 // token -> id
	postings [][]byte          // token id -> uvarint gap run
	lastDoc  []int             // token id -> last ordinal posted (-1 none)

	man Manifest
	err error
}

// Create starts a new store at dir (created if missing; must not already
// contain a store). Leftover shard/index/staging files from a crashed
// ingest — recognizable because no manifest was ever published — are
// swept so the new ingest starts clean.
func Create(dir string, opts Options) (*Writer, error) {
	if opts.ShardDocs <= 0 {
		opts.ShardDocs = 2048
	}
	if opts.FS == nil {
		opts.FS = RealFS(!opts.NoSync)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already contains a store", dir)
	}
	if _, errs := sweepStoreOrphans(opts.FS, dir, -1, -1); len(errs) > 0 {
		return nil, fmt.Errorf("store: create %s: sweeping crashed-ingest leftovers: %v", dir, errs[0])
	}
	w := &Writer{
		dir:      dir,
		opts:     opts,
		fs:       opts.FS,
		vocabIDs: make(map[string]uint32),
		man:      Manifest{Version: version, ShardDocs: opts.ShardDocs},
	}
	if err := w.openShard(); err != nil {
		return nil, err
	}
	return w, nil
}

const manifestName = "manifest.json"

func shardName(i int) string { return fmt.Sprintf("shard-%04d.ifs", i) }

func (w *Writer) openShard() error {
	f, err := w.fs.Create(filepath.Join(w.dir, shardName(w.shardIdx)))
	if err != nil {
		return fmt.Errorf("store: create shard: %w", err)
	}
	w.shard = f
	w.shardBuf = bufio.NewWriterSize(f, 1<<20)
	var hdr bufWriter
	hdr.str(shardMagic)
	hdr.u32(version)
	if _, err := w.shardBuf.Write(hdr.b); err != nil {
		return err
	}
	w.shardOff = uint64(len(hdr.b))
	w.shardTOC = bufWriter{}
	w.shardTOC.u32(0) // count, patched at seal
	w.shardDocs = 0
	return nil
}

// sealShard appends the TOC and footer, fsyncs, and closes the shard
// file. Shards are synced at seal time so every shard the manifest will
// reference is durable before the manifest publish makes it reachable.
func (w *Writer) sealShard() error {
	tocOff := w.shardOff
	// Patch the entry count into the TOC header.
	var cnt bufWriter
	cnt.u32(uint32(w.shardDocs))
	copy(w.shardTOC.b[:4], cnt.b)
	if _, err := w.shardBuf.Write(w.shardTOC.b); err != nil {
		return err
	}
	var foot bufWriter
	foot.u64(tocOff)
	foot.str(footerMagic)
	if _, err := w.shardBuf.Write(foot.b); err != nil {
		return err
	}
	if err := w.shardBuf.Flush(); err != nil {
		return err
	}
	if err := w.shard.Sync(); err != nil {
		return err
	}
	return w.shard.Close()
}

// tokenID interns a token, growing the vocabulary.
func (w *Writer) tokenID(tok string) uint32 {
	if id, ok := w.vocabIDs[tok]; ok {
		return id
	}
	id := uint32(len(w.vocab))
	w.vocabIDs[tok] = id
	w.vocab = append(w.vocab, tok)
	w.postings = append(w.postings, nil)
	w.lastDoc = append(w.lastDoc, -1)
	return id
}

// buildRecord parses one page's markup and encodes its shard record
// bytes (everything after the recLen prefix). intern maps tokens to
// ids, growing the vocabulary; the page's distinct blocking-token ids
// are returned so callers can post them to the inverted index.
func buildRecord(id, raw string, intern func(string) uint32) (rec []byte, textLen int, blockIDs []uint32, err error) {
	c, err := markup.ParseContent(id, raw)
	if err != nil {
		return nil, 0, nil, err
	}
	block := DistinctTokens(c.Text)
	blockIDs = make([]uint32, len(block))
	for i, t := range block {
		blockIDs[i] = intern(t)
	}
	norm := similarity.NormalizedTokens(normalizeSpace(c.Text))
	normIDs := make([]uint32, len(norm))
	for i, t := range norm {
		normIDs[i] = intern(t)
	}
	var w bufWriter
	w.u32(uint32(len(id)))
	w.str(id)
	w.u32(uint32(len(c.Text)))
	w.u32(uint32(len(raw)))
	w.u32(crc32.ChecksumIEEE([]byte(raw)))
	w.u32(uint32(len(blockIDs)))
	w.u32s(blockIDs)
	w.u32(uint32(len(normIDs)))
	w.u32s(normIDs)
	w.str(raw)
	return w.b, len(c.Text), blockIDs, nil
}

// Add ingests one page: its markup is parsed (so the text length and
// token lists recorded are exactly what query-time parsing would
// produce), the record is appended to the current shard, and the
// page's blocking tokens are posted to the inverted index.
func (w *Writer) Add(id, raw string) error {
	if w.err != nil {
		return w.err
	}
	rec, textLen, blockIDs, err := buildRecord(id, raw, w.tokenID)
	if err != nil {
		return w.fail(err)
	}
	ord := w.man.Docs
	for _, tid := range blockIDs {
		w.postings[tid] = appendDelta(w.postings[tid], ord, w.lastDoc[tid])
		w.lastDoc[tid] = ord
	}

	var hdr bufWriter
	hdr.u32(uint32(len(rec)))

	w.shardTOC.u64(w.shardOff)
	w.shardTOC.u32(uint32(len(rec)))
	w.shardTOC.u32(uint32(textLen))
	w.shardTOC.u32(uint32(len(id)))
	w.shardTOC.str(id)

	if _, err := w.shardBuf.Write(hdr.b); err != nil {
		return w.fail(err)
	}
	if _, err := w.shardBuf.Write(rec); err != nil {
		return w.fail(err)
	}
	w.shardOff += uint64(4 + len(rec))
	w.shardDocs++
	w.man.Docs++
	w.man.TextBytes += int64(textLen)
	w.man.RawBytes += int64(len(raw))

	if w.shardDocs >= w.opts.ShardDocs {
		if err := w.sealShard(); err != nil {
			return w.fail(err)
		}
		w.shardIdx++
		if err := w.openShard(); err != nil {
			return w.fail(err)
		}
	}
	return nil
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = fmt.Errorf("store: ingest: %w", err)
	}
	return w.err
}

// Close seals the last shard and writes tokens.idx and manifest.json.
// The store is not readable until Close returns nil. The commit order is
// crash-safe: every shard is fsynced at seal, the index is published via
// temp-file + fsync + rename + directory fsync (which also makes the
// shard directory entries durable), and the manifest is published the
// same way last — the manifest rename is the single commit point. A
// crash anywhere earlier leaves a directory without a manifest, which
// Open refuses and a fresh Create sweeps.
func (w *Writer) Close() error {
	if w.err != nil {
		w.shard.Close()
		return w.err
	}
	if err := w.sealShard(); err != nil {
		return w.fail(err)
	}
	w.man.Shards = w.shardIdx + 1
	w.man.Vocab = len(w.vocab)
	if err := w.writeIndex(); err != nil {
		return w.fail(err)
	}
	mb, err := json.MarshalIndent(w.man, "", "  ")
	if err != nil {
		return w.fail(err)
	}
	if err := atomicWriteFile(w.fs, filepath.Join(w.dir, manifestName), append(mb, '\n')); err != nil {
		return w.fail(err)
	}
	return nil
}

// Manifest returns the counts accumulated so far (complete after Close).
func (w *Writer) Manifest() Manifest { return w.man }

const indexName = "tokens.idx"

// writeIndex persists the vocabulary and the per-token posting runs,
// publishing the file via temp + fsync + rename + directory fsync.
func (w *Writer) writeIndex() error {
	path := filepath.Join(w.dir, indexName)
	f, err := w.fs.Create(path + ".tmp")
	if err != nil {
		return err
	}
	buf := bufio.NewWriterSize(f, 1<<20)

	var hdr bufWriter
	hdr.str(indexMagic)
	hdr.u32(version)
	hdr.u32(uint32(len(w.vocab)))
	hdr.u32(uint32(w.man.Docs))
	for _, tok := range w.vocab {
		hdr.u16(uint16(len(tok)))
		hdr.str(tok)
	}
	off := uint64(len(hdr.b) + 8*(len(w.vocab)+1))
	var offs bufWriter
	for _, run := range w.postings {
		offs.u64(off)
		off += uint64(len(run))
	}
	offs.u64(off)
	if _, err := buf.Write(hdr.b); err != nil {
		f.Close()
		return err
	}
	if _, err := buf.Write(offs.b); err != nil {
		f.Close()
		return err
	}
	for _, run := range w.postings {
		if _, err := buf.Write(run); err != nil {
			f.Close()
			return err
		}
	}
	if err := buf.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := w.fs.Rename(path+".tmp", path); err != nil {
		return err
	}
	return w.fs.SyncDir(w.dir)
}
