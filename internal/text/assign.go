package text

import (
	"fmt"
	"sort"
	"strings"
)

// Mode distinguishes the two assignment types of Section 3.
type Mode int

const (
	// Exact encodes a single value: exactly the assignment's span.
	Exact Mode = iota
	// Contain encodes all values that are token-aligned sub-spans of the
	// assignment's span (including the span itself, trimmed to tokens).
	Contain
)

// String returns "exact" or "contain".
func (m Mode) String() string {
	if m == Exact {
		return "exact"
	}
	return "contain"
}

// Assignment encodes a set of possible values for one cell of a compact
// table: exact(s) is the single value s; contain(s) is every token-aligned
// sub-span of s (Section 3).
type Assignment struct {
	Mode Mode
	Span Span
}

// ExactOf returns the assignment exact(s).
func ExactOf(s Span) Assignment { return Assignment{Mode: Exact, Span: s} }

// ContainOf returns the assignment contain(s).
func ContainOf(s Span) Assignment { return Assignment{Mode: Contain, Span: s} }

// String renders the assignment like the paper: exact("92"),
// contain("Cherry Hills"). Long spans are elided but keep their document
// id and byte range, so distinct spans never render identically.
func (a Assignment) String() string {
	const cut = 48
	t := a.Span.Text()
	if len(t) <= cut {
		return fmt.Sprintf("%s(%q)", a.Mode, t)
	}
	return fmt.Sprintf("%s(%s[%d:%d] %q...%q)", a.Mode,
		a.Span.Doc().ID(), a.Span.Start(), a.Span.End(), t[:20], t[len(t)-12:])
}

// NumValues returns |V(a)|, the number of values the assignment encodes.
func (a Assignment) NumValues() int {
	if a.Mode == Exact {
		return 1
	}
	sh, ok := a.Span.Shrink()
	if !ok {
		return 0
	}
	return sh.NumSubSpans()
}

// Values enumerates V(a), calling fn for each encoded value span.
// Enumeration stops early when fn returns false.
func (a Assignment) Values(fn func(Span) bool) {
	if a.Mode == Exact {
		fn(a.Span)
		return
	}
	sh, ok := a.Span.Shrink()
	if !ok {
		return
	}
	sh.SubSpans(fn)
}

// Covers reports whether value v is in V(a).
func (a Assignment) Covers(v Span) bool {
	if a.Mode == Exact {
		return a.Span.Equal(v)
	}
	if !a.Span.Contains(v) {
		return false
	}
	// v must be token-aligned within the document.
	d := v.Doc()
	lo, hi := v.TokenBounds()
	if lo >= hi {
		return false
	}
	toks := d.content().tokens
	return toks[lo].Start == v.Start() && toks[hi-1].End == v.End()
}

// CoversText reports whether any value in V(a) has the given normalised text.
func (a Assignment) CoversText(txt string) bool {
	found := false
	a.Values(func(s Span) bool {
		if s.NormText() == txt {
			found = true
			return false
		}
		return true
	})
	return found
}

// CompareAssignments orders assignments by mode, then span. Used to produce
// canonical cell renderings for signatures and tests.
func CompareAssignments(a, b Assignment) int {
	if a.Mode != b.Mode {
		if a.Mode < b.Mode {
			return -1
		}
		return 1
	}
	return CompareSpans(a.Span, b.Span)
}

// SortAssignments sorts a slice of assignments into canonical order.
func SortAssignments(as []Assignment) {
	sort.Slice(as, func(i, j int) bool { return CompareAssignments(as[i], as[j]) < 0 })
}

// FormatAssignments renders a multiset of assignments canonically, e.g.
// {exact("351000"), contain("Cozy ... High")}.
func FormatAssignments(as []Assignment) string {
	cp := make([]Assignment, len(as))
	copy(cp, as)
	SortAssignments(cp)
	parts := make([]string, len(cp))
	for i, a := range cp {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// DedupAssignments removes duplicate assignments (same mode, same span) and
// assignments subsumed by a contain assignment in the same set:
// contain(s) subsumes contain(t) when t ⊆ s, and subsumes exact(v) when
// v ∈ V(contain(s)). The result is sorted canonically.
func DedupAssignments(as []Assignment) []Assignment {
	if len(as) <= 1 {
		cp := make([]Assignment, len(as))
		copy(cp, as)
		return cp
	}
	cp := make([]Assignment, len(as))
	copy(cp, as)
	SortAssignments(cp)
	// Drop exact duplicates first.
	uniq := cp[:0]
	for i, a := range cp {
		if i > 0 && CompareAssignments(cp[i-1], a) == 0 {
			continue
		}
		uniq = append(uniq, a)
	}
	// Drop assignments subsumed by a contain assignment.
	var out []Assignment
	for i, a := range uniq {
		subsumed := false
		for j, b := range uniq {
			if i == j || b.Mode != Contain {
				continue
			}
			switch a.Mode {
			case Contain:
				if b.Span.Contains(a.Span) && !a.Span.Equal(b.Span) {
					subsumed = true
				} else if a.Span.Equal(b.Span) && j < i {
					subsumed = true
				}
			case Exact:
				if b.Covers(a.Span) {
					subsumed = true
				}
			}
			if subsumed {
				break
			}
		}
		if !subsumed {
			out = append(out, a)
		}
	}
	return out
}
