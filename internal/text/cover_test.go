package text

import (
	"strings"
	"testing"
)

func TestMarkKindString(t *testing.T) {
	cases := map[MarkKind]string{
		MarkBold:      "bold",
		MarkItalic:    "italic",
		MarkUnderline: "underline",
		MarkLink:      "link",
		MarkListItem:  "list-item",
		MarkTitle:     "title",
		MarkHeader:    "header",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("MarkKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := MarkKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestSpanStringAndValid(t *testing.T) {
	var zero Span
	if zero.Valid() {
		t.Error("zero span should be invalid")
	}
	if zero.String() != "<nil span>" {
		t.Errorf("zero span string = %q", zero.String())
	}
	d := NewDocument("doc", "hello", nil)
	s := d.Span(0, 5)
	if !s.Valid() || !strings.Contains(s.String(), "doc[0:5]") {
		t.Errorf("span string = %q", s.String())
	}
}

func TestTokenSpanBounds(t *testing.T) {
	d := NewDocument("d", "a b c", nil)
	whole := d.WholeSpan()
	if got := whole.TokenSpan(0, 2).Text(); got != "a b" {
		t.Errorf("TokenSpan(0,2) = %q", got)
	}
	if got := whole.TokenSpan(2, 3).Text(); got != "c" {
		t.Errorf("TokenSpan(2,3) = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty token span")
		}
	}()
	whole.TokenSpan(1, 1)
}

func TestSubOutOfRangePanics(t *testing.T) {
	d := NewDocument("d", "abcdef", nil)
	s := d.Span(1, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-parent sub")
		}
	}()
	s.Sub(0, 3)
}

func TestLinks(t *testing.T) {
	d := NewDocument("d", "click here now", nil)
	d.SetLinks([]Link{{Start: 6, End: 10, Target: "http://x"}})
	if got := d.Links(); len(got) != 1 || got[0].Target != "http://x" {
		t.Fatalf("links = %+v", got)
	}
	if l, ok := d.LinkAt(7); !ok || l.Target != "http://x" {
		t.Errorf("LinkAt(7) = %+v, %v", l, ok)
	}
	if _, ok := d.LinkAt(0); ok {
		t.Error("LinkAt outside region should miss")
	}
	if _, ok := d.LinkAt(12); ok {
		t.Error("LinkAt after region should miss")
	}
}

func TestAssignmentCoversAcrossDocs(t *testing.T) {
	d1 := NewDocument("a", "same text", nil)
	d2 := NewDocument("b", "same text", nil)
	a := ContainOf(d1.WholeSpan())
	if a.Covers(d2.Span(0, 4)) {
		t.Error("contain must not cover spans of other documents")
	}
	e := ExactOf(d1.Span(0, 4))
	if e.Covers(d2.Span(0, 4)) {
		t.Error("exact must not cover spans of other documents")
	}
}

func TestContainOfWhitespaceOnlySpan(t *testing.T) {
	d := NewDocument("d", "a   b", nil)
	ws := d.Span(1, 4) // whitespace only
	a := ContainOf(ws)
	if a.NumValues() != 0 {
		t.Errorf("whitespace contain NumValues = %d", a.NumValues())
	}
	n := 0
	a.Values(func(Span) bool { n++; return true })
	if n != 0 {
		t.Errorf("whitespace contain yielded %d values", n)
	}
}

func TestDedupEmptyAndSingle(t *testing.T) {
	if got := DedupAssignments(nil); len(got) != 0 {
		t.Errorf("dedup(nil) = %v", got)
	}
	d := NewDocument("d", "x", nil)
	one := []Assignment{ExactOf(d.WholeSpan())}
	if got := DedupAssignments(one); len(got) != 1 {
		t.Errorf("dedup(single) = %v", got)
	}
}
