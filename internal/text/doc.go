// Package text defines the foundational data model for iFlex: documents,
// token-aligned spans, and assignments (the building blocks of compact
// tables, per Section 3 of the paper).
//
// A Document is plain text plus style "marks" (bold, italic, hyperlink,
// list item, title, section header, ...) produced by the markup parser.
// A Span is a byte range inside one document. Sub-spans are token-aligned:
// the set of sub-spans of a span is the set of contiguous token sequences
// it covers, which is exactly how the paper's Figure 2.e enumerates the
// possible values of contain("Cozy ... High").
//
// Documents come in two flavours sharing one type: eager documents
// (NewDocument) hold their content from construction, while lazy documents
// (NewLazyDocument) know only their ID and text length up front and
// materialize text, marks, and the token/line indexes on first access —
// the corpus-scale document store hands out lazy handles so a
// million-page corpus does not have to be resident to be queryable.
package text

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MarkKind identifies a style or structural region of a document.
type MarkKind int

// The mark kinds produced by the markup parser.
const (
	MarkBold MarkKind = iota
	MarkItalic
	MarkUnderline
	MarkLink
	MarkListItem
	MarkTitle
	MarkHeader // section header; its text is the "preceding label" of what follows
	numMarkKinds
)

var markNames = [...]string{
	MarkBold:      "bold",
	MarkItalic:    "italic",
	MarkUnderline: "underline",
	MarkLink:      "link",
	MarkListItem:  "list-item",
	MarkTitle:     "title",
	MarkHeader:    "header",
}

// String returns the human-readable name of the mark kind.
func (k MarkKind) String() string {
	if k < 0 || int(k) >= len(markNames) {
		return fmt.Sprintf("MarkKind(%d)", int(k))
	}
	return markNames[k]
}

// Mark is a styled or structural region [Start, End) of a document's text.
type Mark struct {
	Kind  MarkKind
	Start int
	End   int
}

// Link records a hyperlink region and its target URL.
type Link struct {
	Start  int
	End    int
	Target string
}

// Token is a whitespace-delimited token occupying [Start, End) of the text.
type Token struct {
	Start int
	End   int
}

// DocContent is the loadable content of a lazy document: the plain text
// plus the style marks and hyperlinks the markup parser produced.
type DocContent struct {
	Text  string
	Marks []Mark
	Links []Link
}

// LoadError is the panic value raised when a lazy document's content
// cannot be materialized (unreadable shard, checksum mismatch, text
// length drift). It unwinds like any per-document fault, so the engine's
// quarantine guard isolates the document instead of crashing.
type LoadError struct {
	Doc string
	Err error
}

func (e *LoadError) Error() string { return fmt.Sprintf("text: loading document %q: %v", e.Doc, e.Err) }
func (e *LoadError) Unwrap() error { return e.Err }

// docPayload is the materialized content of a document. It is immutable
// once published (swapped in behind an atomic pointer), so concurrent
// readers share it without locks; a lazy document may drop and later
// rebuild it — materialization is deterministic, so every rebuild is
// interchangeable.
type docPayload struct {
	text   string
	marks  []Mark   // sorted by Start
	tokens []Token  // sorted by Start, non-overlapping
	byKind [][]Mark // marks grouped by kind, each sorted by Start
	tokAt  []int    // tokAt[i] = index of the token covering byte i, or -1
	links  []Link   // hyperlink targets, sorted by Start

	lineStarts []int // offset of each line's first byte; lineStarts[0] == 0

	lowerOnce sync.Once
	lower     string // lazily computed strings.ToLower(text)
}

// Document is an immutable page of text with style marks and a token index.
// Construct with NewDocument or NewLazyDocument; the zero value is not
// usable. ID, Len, Span, and WholeSpan never touch the content; every
// other accessor materializes a lazy document on first use.
type Document struct {
	id      string
	textLen int
	// load, when non-nil, produces the document content on demand (lazy
	// documents); nil marks an eager document whose payload never drops.
	load func() (DocContent, error)

	mu      sync.Mutex // serializes materialization
	payload atomic.Pointer[docPayload]
}

// NewDocument builds a document from an id, its plain text, and style marks.
// Marks may be passed in any order; they are defensively copied and sorted.
func NewDocument(id, txt string, marks []Mark) *Document {
	d := &Document{id: id, textLen: len(txt)}
	d.payload.Store(buildPayload(txt, marks, nil))
	return d
}

// NewLazyDocument builds a document handle that materializes its content
// on first access. textLen must equal len(content.Text) of what load
// returns (recorded at ingest), so spans over the document can be built —
// and the whole-document span enumerated — without loading anything.
// load must be deterministic: a released document re-materializes through
// it and every rebuild must be identical. A load error (or a content
// whose text length disagrees with textLen) panics with *LoadError.
func NewLazyDocument(id string, textLen int, load func() (DocContent, error)) *Document {
	return &Document{id: id, textLen: textLen, load: load}
}

// buildPayload constructs the materialized content: defensively copied
// and sorted marks, the token and line indexes, and sorted links.
func buildPayload(txt string, marks []Mark, links []Link) *docPayload {
	p := &docPayload{text: txt}
	p.marks = make([]Mark, len(marks))
	copy(p.marks, marks)
	sort.SliceStable(p.marks, func(i, j int) bool {
		if p.marks[i].Start != p.marks[j].Start {
			return p.marks[i].Start < p.marks[j].Start
		}
		return p.marks[i].End > p.marks[j].End
	})
	p.byKind = make([][]Mark, numMarkKinds)
	for _, m := range p.marks {
		if m.Kind >= 0 && m.Kind < numMarkKinds {
			p.byKind[m.Kind] = append(p.byKind[m.Kind], m)
		}
	}
	p.tokenize()
	p.lineStarts = append(p.lineStarts, 0)
	for i := 0; i < len(txt); i++ {
		if txt[i] == '\n' {
			p.lineStarts = append(p.lineStarts, i+1)
		}
	}
	p.links = make([]Link, len(links))
	copy(p.links, links)
	sort.Slice(p.links, func(i, j int) bool { return p.links[i].Start < p.links[j].Start })
	return p
}

// content returns the materialized payload, loading it if necessary.
// Load failures panic with *LoadError: document content is read deep
// inside predicate and feature evaluation whose signatures carry no
// error, and the engine's per-document fault guard turns the panic into
// a quarantine of exactly this document.
func (d *Document) content() *docPayload {
	if p := d.payload.Load(); p != nil {
		return p
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p := d.payload.Load(); p != nil {
		return p
	}
	c, err := d.load()
	if err != nil {
		panic(&LoadError{Doc: d.id, Err: err})
	}
	if len(c.Text) != d.textLen {
		panic(&LoadError{Doc: d.id, Err: fmt.Errorf("content length %d != recorded length %d", len(c.Text), d.textLen)})
	}
	p := buildPayload(c.Text, c.Marks, c.Links)
	d.payload.Store(p)
	return p
}

// Loaded reports whether the document's content is currently resident.
func (d *Document) Loaded() bool { return d.payload.Load() != nil }

// Release drops a lazy document's materialized content so its memory can
// be reclaimed; the next access re-materializes through the load
// callback. Eager documents never release (their content has no other
// home); Release reports whether content was actually dropped. Spans and
// strings previously handed out remain valid — they keep the old payload
// alive until their own lifetimes end.
func (d *Document) Release() bool {
	if d.load == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.payload.Load() == nil {
		return false
	}
	d.payload.Store(nil)
	return true
}

// tokenize splits the text on whitespace — and additionally at mark
// boundaries, so that a style region always covers whole tokens even when
// punctuation abuts it ("<b>Basktall</b>," yields tokens "Basktall" and
// ","). It builds the byte->token index.
func (p *docPayload) tokenize() {
	boundary := make(map[int]bool, 2*len(p.marks))
	for _, m := range p.marks {
		boundary[m.Start] = true
		boundary[m.End] = true
	}
	p.tokAt = make([]int, len(p.text)+1)
	for i := range p.tokAt {
		p.tokAt[i] = -1
	}
	inTok := false
	start := 0
	emit := func(end int) {
		idx := len(p.tokens)
		p.tokens = append(p.tokens, Token{Start: start, End: end})
		for j := start; j < end; j++ {
			p.tokAt[j] = idx
		}
		inTok = false
	}
	for i := 0; i <= len(p.text); i++ {
		isSpace := i == len(p.text) || p.text[i] == ' ' || p.text[i] == '\t' || p.text[i] == '\n' || p.text[i] == '\r'
		switch {
		case !inTok && !isSpace:
			inTok = true
			start = i
		case inTok && isSpace:
			emit(i)
		case inTok && boundary[i]:
			emit(i)
			inTok = true
			start = i
		}
	}
}

// SetLinks attaches hyperlink targets (called by the markup parser during
// construction; the slice is copied and sorted by start offset). Lazy
// documents receive links through their DocContent instead.
func (d *Document) SetLinks(links []Link) {
	p := d.content()
	p.links = make([]Link, len(links))
	copy(p.links, links)
	sort.Slice(p.links, func(i, j int) bool { return p.links[i].Start < p.links[j].Start })
}

// Links returns the document's hyperlink targets, sorted by start offset.
// Do not modify the returned slice.
func (d *Document) Links() []Link { return d.content().links }

// LinkAt returns the link whose region contains offset, if any.
func (d *Document) LinkAt(offset int) (Link, bool) {
	for _, l := range d.content().links {
		if l.Start <= offset && offset < l.End {
			return l, true
		}
		if l.Start > offset {
			break
		}
	}
	return Link{}, false
}

// ID returns the document identifier (e.g. a file name or URL).
func (d *Document) ID() string { return d.id }

// Text returns the full plain text of the document.
func (d *Document) Text() string { return d.content().text }

// Len returns the length of the document text in bytes. It never loads a
// lazy document (the length is recorded at ingest).
func (d *Document) Len() int { return d.textLen }

// Tokens returns the document's token index. The slice must not be modified.
func (d *Document) Tokens() []Token { return d.content().tokens }

// Marks returns all style marks, sorted by start offset. Do not modify.
func (d *Document) Marks() []Mark { return d.content().marks }

// MarksOf returns the marks of one kind, sorted by start offset.
func (d *Document) MarksOf(k MarkKind) []Mark {
	if k < 0 || k >= numMarkKinds {
		return nil
	}
	return d.content().byKind[k]
}

// Span returns the span [start, end) of this document.
// It panics if the range is out of bounds or inverted.
func (d *Document) Span(start, end int) Span {
	if start < 0 || end > d.textLen || start > end {
		panic(fmt.Sprintf("text: span [%d,%d) out of range for doc %q (len %d)", start, end, d.id, d.textLen))
	}
	return Span{doc: d, start: start, end: end}
}

// WholeSpan returns the span covering the entire document.
func (d *Document) WholeSpan() Span { return Span{doc: d, start: 0, end: d.textLen} }

// TokenIndexAt returns the index of the token covering byte offset i,
// or -1 if offset i is whitespace or out of range.
func (d *Document) TokenIndexAt(i int) int {
	p := d.content()
	if i < 0 || i >= len(p.tokAt) {
		return -1
	}
	return p.tokAt[i]
}

// tokenRange returns the indices [lo, hi) of tokens fully contained in
// [start, end). hi may equal lo when no token fits.
func (d *Document) tokenRange(start, end int) (lo, hi int) {
	tokens := d.content().tokens
	lo = sort.Search(len(tokens), func(i int) bool { return tokens[i].Start >= start })
	hi = lo
	for hi < len(tokens) && tokens[hi].End <= end {
		hi++
	}
	return lo, hi
}

// LineStart returns the byte offset of the first byte of the line
// containing offset (0 for the first line). Offsets past the text clamp
// to the last line. O(log lines) via the line-start index.
func (d *Document) LineStart(offset int) int {
	lineStarts := d.content().lineStarts
	i := sort.Search(len(lineStarts), func(i int) bool { return lineStarts[i] > offset })
	return lineStarts[i-1]
}

// LineEnd returns the byte offset just past the last byte of the line
// containing offset, excluding the newline itself.
func (d *Document) LineEnd(offset int) int {
	p := d.content()
	i := sort.Search(len(p.lineStarts), func(i int) bool { return p.lineStarts[i] > offset })
	if i < len(p.lineStarts) {
		return p.lineStarts[i] - 1 // byte before the next line's start is '\n'
	}
	return len(p.text)
}

// LowerText returns strings.ToLower of the full text, computed once per
// materialization. Callers doing case-insensitive offset arithmetic must
// check len(LowerText()) == Len(): Unicode case mapping can change byte
// length, in which case offsets do not line up and a per-window fold is
// needed.
func (d *Document) LowerText() string {
	p := d.content()
	p.lowerOnce.Do(func() { p.lower = strings.ToLower(p.text) })
	return p.lower
}

// HeaderBefore returns the closest header mark that ends at or before
// offset, and true if one exists. Used by the prec-label-* features.
func (d *Document) HeaderBefore(offset int) (Mark, bool) {
	hs := d.content().byKind[MarkHeader]
	i := sort.Search(len(hs), func(i int) bool { return hs[i].End > offset })
	if i == 0 {
		return Mark{}, false
	}
	return hs[i-1], true
}

// ResidentBytes estimates the memory a materialized document's payload
// occupies (text, token/byte indexes, marks, line starts) — the quantity
// the document store's resident-shard budget bounds. Returns 0 when the
// content is not resident.
func (d *Document) ResidentBytes() int64 {
	p := d.payload.Load()
	if p == nil {
		return 0
	}
	b := int64(len(p.text)) + int64(len(p.lower))
	b += int64(len(p.tokAt)) * 8
	b += int64(len(p.tokens)) * 16
	b += int64(len(p.marks)) * 24 * 2 // marks + byKind share entries but not headers
	b += int64(len(p.lineStarts)) * 8
	for _, l := range p.links {
		b += int64(len(l.Target)) + 24
	}
	return b
}

// normalizeSpace collapses runs of whitespace to single spaces and trims.
func normalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
