// Package text defines the foundational data model for iFlex: documents,
// token-aligned spans, and assignments (the building blocks of compact
// tables, per Section 3 of the paper).
//
// A Document is plain text plus style "marks" (bold, italic, hyperlink,
// list item, title, section header, ...) produced by the markup parser.
// A Span is a byte range inside one document. Sub-spans are token-aligned:
// the set of sub-spans of a span is the set of contiguous token sequences
// it covers, which is exactly how the paper's Figure 2.e enumerates the
// possible values of contain("Cozy ... High").
package text

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MarkKind identifies a style or structural region of a document.
type MarkKind int

// The mark kinds produced by the markup parser.
const (
	MarkBold MarkKind = iota
	MarkItalic
	MarkUnderline
	MarkLink
	MarkListItem
	MarkTitle
	MarkHeader // section header; its text is the "preceding label" of what follows
	numMarkKinds
)

var markNames = [...]string{
	MarkBold:      "bold",
	MarkItalic:    "italic",
	MarkUnderline: "underline",
	MarkLink:      "link",
	MarkListItem:  "list-item",
	MarkTitle:     "title",
	MarkHeader:    "header",
}

// String returns the human-readable name of the mark kind.
func (k MarkKind) String() string {
	if k < 0 || int(k) >= len(markNames) {
		return fmt.Sprintf("MarkKind(%d)", int(k))
	}
	return markNames[k]
}

// Mark is a styled or structural region [Start, End) of a document's text.
type Mark struct {
	Kind  MarkKind
	Start int
	End   int
}

// Link records a hyperlink region and its target URL.
type Link struct {
	Start  int
	End    int
	Target string
}

// Token is a whitespace-delimited token occupying [Start, End) of the text.
type Token struct {
	Start int
	End   int
}

// Document is an immutable page of text with style marks and a token index.
// Construct with NewDocument; the zero value is not usable.
type Document struct {
	id     string
	text   string
	marks  []Mark   // sorted by Start
	tokens []Token  // sorted by Start, non-overlapping
	byKind [][]Mark // marks grouped by kind, each sorted by Start
	tokAt  []int    // tokAt[i] = index of the token covering byte i, or -1
	links  []Link   // hyperlink targets, sorted by Start

	lineStarts []int // offset of each line's first byte; lineStarts[0] == 0

	lowerOnce sync.Once
	lower     string // lazily computed strings.ToLower(text)
}

// NewDocument builds a document from an id, its plain text, and style marks.
// Marks may be passed in any order; they are defensively copied and sorted.
func NewDocument(id, txt string, marks []Mark) *Document {
	d := &Document{id: id, text: txt}
	d.marks = make([]Mark, len(marks))
	copy(d.marks, marks)
	sort.SliceStable(d.marks, func(i, j int) bool {
		if d.marks[i].Start != d.marks[j].Start {
			return d.marks[i].Start < d.marks[j].Start
		}
		return d.marks[i].End > d.marks[j].End
	})
	d.byKind = make([][]Mark, numMarkKinds)
	for _, m := range d.marks {
		if m.Kind >= 0 && m.Kind < numMarkKinds {
			d.byKind[m.Kind] = append(d.byKind[m.Kind], m)
		}
	}
	d.tokenize()
	d.lineStarts = append(d.lineStarts, 0)
	for i := 0; i < len(txt); i++ {
		if txt[i] == '\n' {
			d.lineStarts = append(d.lineStarts, i+1)
		}
	}
	return d
}

// tokenize splits the text on whitespace — and additionally at mark
// boundaries, so that a style region always covers whole tokens even when
// punctuation abuts it ("<b>Basktall</b>," yields tokens "Basktall" and
// ","). It builds the byte->token index.
func (d *Document) tokenize() {
	boundary := make(map[int]bool, 2*len(d.marks))
	for _, m := range d.marks {
		boundary[m.Start] = true
		boundary[m.End] = true
	}
	d.tokAt = make([]int, len(d.text)+1)
	for i := range d.tokAt {
		d.tokAt[i] = -1
	}
	inTok := false
	start := 0
	emit := func(end int) {
		idx := len(d.tokens)
		d.tokens = append(d.tokens, Token{Start: start, End: end})
		for j := start; j < end; j++ {
			d.tokAt[j] = idx
		}
		inTok = false
	}
	for i := 0; i <= len(d.text); i++ {
		isSpace := i == len(d.text) || d.text[i] == ' ' || d.text[i] == '\t' || d.text[i] == '\n' || d.text[i] == '\r'
		switch {
		case !inTok && !isSpace:
			inTok = true
			start = i
		case inTok && isSpace:
			emit(i)
		case inTok && boundary[i]:
			emit(i)
			inTok = true
			start = i
		}
	}
}

// SetLinks attaches hyperlink targets (called by the markup parser during
// construction; the slice is copied and sorted by start offset).
func (d *Document) SetLinks(links []Link) {
	d.links = make([]Link, len(links))
	copy(d.links, links)
	sort.Slice(d.links, func(i, j int) bool { return d.links[i].Start < d.links[j].Start })
}

// Links returns the document's hyperlink targets, sorted by start offset.
// Do not modify the returned slice.
func (d *Document) Links() []Link { return d.links }

// LinkAt returns the link whose region contains offset, if any.
func (d *Document) LinkAt(offset int) (Link, bool) {
	for _, l := range d.links {
		if l.Start <= offset && offset < l.End {
			return l, true
		}
		if l.Start > offset {
			break
		}
	}
	return Link{}, false
}

// ID returns the document identifier (e.g. a file name or URL).
func (d *Document) ID() string { return d.id }

// Text returns the full plain text of the document.
func (d *Document) Text() string { return d.text }

// Len returns the length of the document text in bytes.
func (d *Document) Len() int { return len(d.text) }

// Tokens returns the document's token index. The slice must not be modified.
func (d *Document) Tokens() []Token { return d.tokens }

// Marks returns all style marks, sorted by start offset. Do not modify.
func (d *Document) Marks() []Mark { return d.marks }

// MarksOf returns the marks of one kind, sorted by start offset.
func (d *Document) MarksOf(k MarkKind) []Mark {
	if k < 0 || k >= numMarkKinds {
		return nil
	}
	return d.byKind[k]
}

// Span returns the span [start, end) of this document.
// It panics if the range is out of bounds or inverted.
func (d *Document) Span(start, end int) Span {
	if start < 0 || end > len(d.text) || start > end {
		panic(fmt.Sprintf("text: span [%d,%d) out of range for doc %q (len %d)", start, end, d.id, len(d.text)))
	}
	return Span{doc: d, start: start, end: end}
}

// WholeSpan returns the span covering the entire document.
func (d *Document) WholeSpan() Span { return Span{doc: d, start: 0, end: len(d.text)} }

// TokenIndexAt returns the index of the token covering byte offset i,
// or -1 if offset i is whitespace or out of range.
func (d *Document) TokenIndexAt(i int) int {
	if i < 0 || i >= len(d.tokAt) {
		return -1
	}
	return d.tokAt[i]
}

// tokenRange returns the indices [lo, hi) of tokens fully contained in
// [start, end). hi may equal lo when no token fits.
func (d *Document) tokenRange(start, end int) (lo, hi int) {
	lo = sort.Search(len(d.tokens), func(i int) bool { return d.tokens[i].Start >= start })
	hi = lo
	for hi < len(d.tokens) && d.tokens[hi].End <= end {
		hi++
	}
	return lo, hi
}

// LineStart returns the byte offset of the first byte of the line
// containing offset (0 for the first line). Offsets past the text clamp
// to the last line. O(log lines) via the line-start index.
func (d *Document) LineStart(offset int) int {
	i := sort.Search(len(d.lineStarts), func(i int) bool { return d.lineStarts[i] > offset })
	return d.lineStarts[i-1]
}

// LineEnd returns the byte offset just past the last byte of the line
// containing offset, excluding the newline itself.
func (d *Document) LineEnd(offset int) int {
	i := sort.Search(len(d.lineStarts), func(i int) bool { return d.lineStarts[i] > offset })
	if i < len(d.lineStarts) {
		return d.lineStarts[i] - 1 // byte before the next line's start is '\n'
	}
	return len(d.text)
}

// LowerText returns strings.ToLower of the full text, computed once per
// document. Callers doing case-insensitive offset arithmetic must check
// len(LowerText()) == Len(): Unicode case mapping can change byte length,
// in which case offsets do not line up and a per-window fold is needed.
func (d *Document) LowerText() string {
	d.lowerOnce.Do(func() { d.lower = strings.ToLower(d.text) })
	return d.lower
}

// HeaderBefore returns the closest header mark that ends at or before
// offset, and true if one exists. Used by the prec-label-* features.
func (d *Document) HeaderBefore(offset int) (Mark, bool) {
	hs := d.byKind[MarkHeader]
	i := sort.Search(len(hs), func(i int) bool { return hs[i].End > offset })
	if i == 0 {
		return Mark{}, false
	}
	return hs[i-1], true
}

// normalizeSpace collapses runs of whitespace to single spaces and trims.
func normalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
