package text

import (
	"testing"
	"testing/quick"
)

func mkDoc(t *testing.T, id, body string, marks ...Mark) *Document {
	t.Helper()
	return NewDocument(id, body, marks)
}

func TestTokenize(t *testing.T) {
	d := mkDoc(t, "d1", "Cozy house on quiet street")
	toks := d.Tokens()
	if len(toks) != 5 {
		t.Fatalf("got %d tokens, want 5", len(toks))
	}
	want := []string{"Cozy", "house", "on", "quiet", "street"}
	for i, tok := range toks {
		if got := d.Text()[tok.Start:tok.End]; got != want[i] {
			t.Errorf("token %d = %q, want %q", i, got, want[i])
		}
	}
}

func TestTokenizeWhitespaceVariants(t *testing.T) {
	cases := []struct {
		body string
		want int
	}{
		{"", 0},
		{"   ", 0},
		{"a", 1},
		{" a ", 1},
		{"a\tb\nc\r\nd", 4},
		{"  leading and   multiple  spaces ", 4},
	}
	for _, c := range cases {
		d := NewDocument("x", c.body, nil)
		if got := len(d.Tokens()); got != c.want {
			t.Errorf("tokenize(%q) = %d tokens, want %d", c.body, got, c.want)
		}
	}
}

func TestTokenIndexAt(t *testing.T) {
	d := mkDoc(t, "d", "ab cd")
	cases := map[int]int{0: 0, 1: 0, 2: -1, 3: 1, 4: 1}
	for off, want := range cases {
		if got := d.TokenIndexAt(off); got != want {
			t.Errorf("TokenIndexAt(%d) = %d, want %d", off, got, want)
		}
	}
	if d.TokenIndexAt(-1) != -1 || d.TokenIndexAt(100) != -1 {
		t.Error("out-of-range offsets should map to -1")
	}
}

func TestSpanBasics(t *testing.T) {
	d := mkDoc(t, "d", "Price: 351000 dollars")
	s := d.Span(7, 13)
	if s.Text() != "351000" {
		t.Fatalf("span text = %q", s.Text())
	}
	if n, ok := s.Numeric(); !ok || n != 351000 {
		t.Fatalf("Numeric() = %v, %v", n, ok)
	}
	whole := d.WholeSpan()
	if !whole.Contains(s) {
		t.Error("whole span should contain sub-span")
	}
	if !s.Overlaps(d.Span(10, 15)) {
		t.Error("overlapping spans not detected")
	}
	if s.Overlaps(d.Span(13, 15)) {
		t.Error("adjacent spans should not overlap")
	}
}

func TestSpanPanicsOutOfRange(t *testing.T) {
	d := mkDoc(t, "d", "abc")
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range span")
		}
	}()
	d.Span(1, 10)
}

func TestParseNumeric(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"92", 92, true},
		{"$1,234.50", 1234.5, true},
		{"  619000 ", 619000, true},
		{"-42", -42, true},
		{"", 0, false},
		{"$", 0, false},
		{"abc", 0, false},
		{"12a", 0, false},
		{"1.2.3", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseNumeric(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseNumeric(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestSubSpansEnumeration(t *testing.T) {
	d := mkDoc(t, "d", "Cozy house on")
	s := d.WholeSpan()
	var texts []string
	s.SubSpans(func(sub Span) bool {
		texts = append(texts, sub.Text())
		return true
	})
	want := []string{"Cozy", "Cozy house", "Cozy house on", "house", "house on", "on"}
	if len(texts) != len(want) {
		t.Fatalf("got %d sub-spans %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("sub-span %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if n := s.NumSubSpans(); n != 6 {
		t.Errorf("NumSubSpans = %d, want 6", n)
	}
}

func TestSubSpansEarlyStop(t *testing.T) {
	d := mkDoc(t, "d", "a b c d e")
	n := 0
	d.WholeSpan().SubSpans(func(Span) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d spans, want 3", n)
	}
}

func TestShrinkToTokens(t *testing.T) {
	d := mkDoc(t, "d", "  hello world  ")
	s, ok := d.WholeSpan().Shrink()
	if !ok || s.Text() != "hello world" {
		t.Fatalf("Shrink = %q, %v", s.Text(), ok)
	}
	// A span covering only whitespace or a token fragment shrinks to nothing.
	if _, ok := d.Span(0, 2).Shrink(); ok {
		t.Error("whitespace-only span should not shrink to a token span")
	}
	if _, ok := d.Span(2, 5).Shrink(); ok {
		t.Error("partial-token span should not shrink to a token span")
	}
}

func TestMarksSortedAndFiltered(t *testing.T) {
	d := mkDoc(t, "d", "abc def ghi",
		Mark{Kind: MarkItalic, Start: 4, End: 7},
		Mark{Kind: MarkBold, Start: 0, End: 3},
		Mark{Kind: MarkBold, Start: 8, End: 11},
	)
	all := d.Marks()
	if len(all) != 3 || all[0].Start != 0 || all[1].Start != 4 {
		t.Fatalf("marks not sorted: %+v", all)
	}
	bold := d.MarksOf(MarkBold)
	if len(bold) != 2 || bold[0].Start != 0 || bold[1].Start != 8 {
		t.Fatalf("MarksOf(bold) = %+v", bold)
	}
	if got := d.MarksOf(MarkLink); len(got) != 0 {
		t.Errorf("MarksOf(link) = %+v, want empty", got)
	}
}

func TestHeaderBefore(t *testing.T) {
	d := mkDoc(t, "d", "Panel Session Alice Bob Other Stuff",
		Mark{Kind: MarkHeader, Start: 0, End: 13},
	)
	if h, ok := d.HeaderBefore(20); !ok || h.Start != 0 {
		t.Fatalf("HeaderBefore(20) = %+v, %v", h, ok)
	}
	if _, ok := d.HeaderBefore(5); ok {
		t.Error("no header should precede an offset inside the header")
	}
}

func TestAssignmentValues(t *testing.T) {
	d := mkDoc(t, "d", "Cozy house on")
	whole := d.WholeSpan()
	ex := ExactOf(d.Span(0, 4))
	if ex.NumValues() != 1 {
		t.Errorf("exact NumValues = %d", ex.NumValues())
	}
	co := ContainOf(whole)
	if co.NumValues() != 6 {
		t.Errorf("contain NumValues = %d, want 6", co.NumValues())
	}
	if !co.Covers(d.Span(5, 13)) { // "house on"
		t.Error("contain should cover token-aligned sub-span")
	}
	if co.Covers(d.Span(1, 4)) { // "ozy": not token aligned
		t.Error("contain must not cover non-token-aligned span")
	}
	if !co.CoversText("house") || co.CoversText("ouse") {
		t.Error("CoversText mismatch")
	}
}

func TestAssignmentString(t *testing.T) {
	d := mkDoc(t, "d", "92 bottles")
	if got := ExactOf(d.Span(0, 2)).String(); got != `exact("92")` {
		t.Errorf("String = %s", got)
	}
	if got := ContainOf(d.Span(0, 10)).String(); got != `contain("92 bottles")` {
		t.Errorf("String = %s", got)
	}
}

func TestDedupAssignments(t *testing.T) {
	d := mkDoc(t, "d", "alpha beta gamma")
	whole := d.WholeSpan()
	alpha := d.Span(0, 5)
	beta := d.Span(6, 10)
	in := []Assignment{
		ExactOf(alpha), // subsumed by contain(whole)
		ContainOf(whole),
		ContainOf(beta),  // subsumed by contain(whole)
		ExactOf(alpha),   // duplicate
		ContainOf(whole), // duplicate
	}
	out := DedupAssignments(in)
	if len(out) != 1 || out[0].Mode != Contain || !out[0].Span.Equal(whole) {
		t.Fatalf("DedupAssignments = %v", out)
	}
}

func TestDedupKeepsIndependent(t *testing.T) {
	d := mkDoc(t, "d", "alpha beta gamma delta")
	a := ContainOf(d.Span(0, 10))  // "alpha beta"
	b := ContainOf(d.Span(11, 22)) // "gamma delta"
	e := ExactOf(d.Span(0, 22))    // whole text: not covered by either contain
	out := DedupAssignments([]Assignment{a, b, e})
	if len(out) != 3 {
		t.Fatalf("DedupAssignments dropped independent assignments: %v", out)
	}
}

func TestCompareSpansOrdering(t *testing.T) {
	d1 := mkDoc(t, "a", "one two three")
	d2 := mkDoc(t, "b", "one two three")
	if CompareSpans(d1.Span(0, 3), d2.Span(0, 3)) >= 0 {
		t.Error("doc id ordering broken")
	}
	if CompareSpans(d1.Span(0, 3), d1.Span(0, 3)) != 0 {
		t.Error("equal spans should compare 0")
	}
	if CompareSpans(d1.Span(0, 3), d1.Span(0, 7)) >= 0 {
		t.Error("end ordering broken")
	}
	if CompareSpans(d1.Span(4, 7), d1.Span(0, 3)) <= 0 {
		t.Error("start ordering broken")
	}
}

// Property: for any generated text, every token-aligned sub-span reported by
// SubSpans is covered by contain(whole), and counts agree with NumSubSpans.
func TestQuickSubSpanInvariants(t *testing.T) {
	f := func(words []uint8) bool {
		if len(words) > 12 {
			words = words[:12]
		}
		body := ""
		for i, w := range words {
			if i > 0 {
				body += " "
			}
			// Build small deterministic words: "wN".
			body += "w" + string(rune('a'+int(w%26)))
		}
		d := NewDocument("q", body, nil)
		whole := d.WholeSpan()
		co := ContainOf(whole)
		n := 0
		ok := true
		whole.SubSpans(func(s Span) bool {
			n++
			if !co.Covers(s) {
				ok = false
				return false
			}
			return true
		})
		return ok && n == whole.NumSubSpans()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLineIndex(t *testing.T) {
	// Reference implementations: the linear scans the index replaced.
	refStart := func(body string, off int) int {
		for i := off - 1; i >= 0; i-- {
			if body[i] == '\n' {
				return i + 1
			}
		}
		return 0
	}
	refEnd := func(body string, off int) int {
		for i := off; i < len(body); i++ {
			if body[i] == '\n' {
				return i
			}
		}
		return len(body)
	}
	bodies := []string{
		"",
		"one line",
		"a\nb\nc",
		"trailing newline\n",
		"\nleading",
		"\n\n\n",
		"beds: 3\nbaths: 2\nprice: 150000",
	}
	for _, body := range bodies {
		d := NewDocument("x", body, nil)
		for off := 0; off <= len(body); off++ {
			if got, want := d.LineStart(off), refStart(body, off); got != want {
				t.Errorf("LineStart(%q, %d) = %d, want %d", body, off, got, want)
			}
			if got, want := d.LineEnd(off), refEnd(body, off); got != want {
				t.Errorf("LineEnd(%q, %d) = %d, want %d", body, off, got, want)
			}
		}
	}
}

func TestLowerText(t *testing.T) {
	d := NewDocument("x", "Cozy HOUSE", nil)
	if got := d.LowerText(); got != "cozy house" {
		t.Errorf("LowerText() = %q, want %q", got, "cozy house")
	}
	if d.LowerText() != d.LowerText() {
		t.Error("LowerText() not stable across calls")
	}
	// Kelvin sign (U+212A, 3 bytes) lowers to 'k' (1 byte): callers doing
	// offset arithmetic must detect the length change and fall back.
	k := NewDocument("k", "aKb", nil)
	if len(k.LowerText()) == k.Len() {
		t.Error("Kelvin sign should change byte length under ToLower")
	}
}
