package text

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLazyDocumentMatchesEager(t *testing.T) {
	txt := "Cozy  studio near\ncampus. <b>Rent</b> $500.\n"
	marks := []Mark{{Kind: MarkBold, Start: 25, End: 29}}
	links := []Link{{Start: 5, End: 11, Target: "http://x"}}

	eager := NewDocument("d1", txt, marks)
	eager.SetLinks(links)

	var loads atomic.Int32
	lazy := NewLazyDocument("d1", len(txt), func() (DocContent, error) {
		loads.Add(1)
		return DocContent{Text: txt, Marks: marks, Links: links}, nil
	})

	if lazy.Loaded() {
		t.Fatal("lazy doc reported loaded before first access")
	}
	if lazy.Len() != eager.Len() || lazy.ID() != eager.ID() {
		t.Fatalf("Len/ID mismatch before load: %d %q", lazy.Len(), lazy.ID())
	}
	if loads.Load() != 0 {
		t.Fatal("Len/ID forced a load")
	}
	// WholeSpan and Span construction must not load either.
	ws := lazy.WholeSpan()
	_ = lazy.Span(3, 9)
	if loads.Load() != 0 {
		t.Fatal("Span construction forced a load")
	}

	if got, want := ws.Text(), eager.WholeSpan().Text(); got != want {
		t.Fatalf("text mismatch: %q vs %q", got, want)
	}
	if got, want := len(lazy.Tokens()), len(eager.Tokens()); got != want {
		t.Fatalf("token count mismatch: %d vs %d", got, want)
	}
	for i, tok := range lazy.Tokens() {
		if eager.Tokens()[i] != tok {
			t.Fatalf("token %d mismatch: %+v vs %+v", i, tok, eager.Tokens()[i])
		}
	}
	if got, want := len(lazy.MarksOf(MarkBold)), 1; got != want {
		t.Fatalf("bold marks: %d", got)
	}
	if l, ok := lazy.LinkAt(6); !ok || l.Target != "http://x" {
		t.Fatalf("LinkAt: %+v %v", l, ok)
	}
	if lazy.LineStart(20) != eager.LineStart(20) || lazy.LineEnd(20) != eager.LineEnd(20) {
		t.Fatal("line index mismatch")
	}
	if loads.Load() != 1 {
		t.Fatalf("expected exactly 1 load, got %d", loads.Load())
	}
}

func TestLazyDocumentReleaseAndReload(t *testing.T) {
	txt := "alpha beta gamma"
	var loads atomic.Int32
	d := NewLazyDocument("d2", len(txt), func() (DocContent, error) {
		loads.Add(1)
		return DocContent{Text: txt}, nil
	})
	if got := d.Text(); got != txt {
		t.Fatalf("Text: %q", got)
	}
	if d.ResidentBytes() == 0 {
		t.Fatal("loaded doc reports zero resident bytes")
	}
	if !d.Release() {
		t.Fatal("Release returned false on a loaded lazy doc")
	}
	if d.Loaded() || d.ResidentBytes() != 0 {
		t.Fatal("doc still resident after Release")
	}
	if d.Release() {
		t.Fatal("second Release returned true")
	}
	if got := d.Text(); got != txt {
		t.Fatalf("Text after reload: %q", got)
	}
	if loads.Load() != 2 {
		t.Fatalf("expected 2 loads, got %d", loads.Load())
	}

	eager := NewDocument("d3", txt, nil)
	if eager.Release() {
		t.Fatal("eager document released its content")
	}
}

func TestLazyDocumentConcurrentLoadOnce(t *testing.T) {
	txt := "one two three four five"
	var loads atomic.Int32
	d := NewLazyDocument("d4", len(txt), func() (DocContent, error) {
		loads.Add(1)
		return DocContent{Text: txt}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d.Text() != txt {
				t.Error("text mismatch")
			}
		}()
	}
	wg.Wait()
	if loads.Load() != 1 {
		t.Fatalf("expected single-flight load, got %d", loads.Load())
	}
}

func TestLazyDocumentLoadFailurePanics(t *testing.T) {
	boom := errors.New("shard unreadable")
	d := NewLazyDocument("d5", 10, func() (DocContent, error) {
		return DocContent{}, boom
	})
	defer func() {
		r := recover()
		le, ok := r.(*LoadError)
		if !ok {
			t.Fatalf("expected *LoadError panic, got %v", r)
		}
		if le.Doc != "d5" || !errors.Is(le, boom) {
			t.Fatalf("bad LoadError: %+v", le)
		}
	}()
	_ = d.Text()
}

func TestLazyDocumentLengthDriftPanics(t *testing.T) {
	d := NewLazyDocument("d6", 99, func() (DocContent, error) {
		return DocContent{Text: "short"}, nil
	})
	defer func() {
		if _, ok := recover().(*LoadError); !ok {
			t.Fatal("expected *LoadError panic on length drift")
		}
	}()
	_ = d.Text()
}
