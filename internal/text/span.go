package text

import (
	"fmt"
	"strconv"
	"strings"
)

// Span is a byte range [Start, End) of one document. Spans are the values
// that IE predicates extract and that assignments encode. The zero Span is
// invalid (it has no document).
type Span struct {
	doc   *Document
	start int
	end   int
}

// Doc returns the document the span belongs to.
func (s Span) Doc() *Document { return s.doc }

// Start returns the span's starting byte offset (inclusive).
func (s Span) Start() int { return s.start }

// End returns the span's ending byte offset (exclusive).
func (s Span) End() int { return s.end }

// Len returns the span's length in bytes.
func (s Span) Len() int { return s.end - s.start }

// Text returns the raw text covered by the span.
func (s Span) Text() string { return s.doc.content().text[s.start:s.end] }

// NormText returns the span text with whitespace runs collapsed and trimmed.
func (s Span) NormText() string { return normalizeSpace(s.Text()) }

// String formats the span for debugging: doc id, range and text.
func (s Span) String() string {
	if s.doc == nil {
		return "<nil span>"
	}
	return fmt.Sprintf("%s[%d:%d]%q", s.doc.id, s.start, s.end, s.Text())
}

// Valid reports whether the span refers to a document.
func (s Span) Valid() bool { return s.doc != nil }

// Equal reports whether two spans denote the same range of the same document.
func (s Span) Equal(o Span) bool {
	return s.doc == o.doc && s.start == o.start && s.end == o.end
}

// Contains reports whether o lies entirely within s (same document).
func (s Span) Contains(o Span) bool {
	return s.doc == o.doc && s.start <= o.start && o.end <= s.end
}

// Overlaps reports whether s and o share at least one byte (same document).
func (s Span) Overlaps(o Span) bool {
	return s.doc == o.doc && s.start < o.end && o.start < s.end
}

// Sub returns the sub-span [start, end) in document coordinates.
// It panics if the range is not inside s.
func (s Span) Sub(start, end int) Span {
	if start < s.start || end > s.end || start > end {
		panic(fmt.Sprintf("text: sub-span [%d,%d) outside %v", start, end, s))
	}
	return Span{doc: s.doc, start: start, end: end}
}

// TokenBounds returns the indices [lo, hi) of document tokens fully
// contained in the span.
func (s Span) TokenBounds() (lo, hi int) { return s.doc.tokenRange(s.start, s.end) }

// NumTokens returns how many whole tokens the span covers.
func (s Span) NumTokens() int {
	lo, hi := s.TokenBounds()
	return hi - lo
}

// TokenSpan returns the span covering document tokens [i, j) of the tokens
// inside s, where i and j index into the token range returned by
// TokenBounds. It panics if the range is empty or out of bounds.
func (s Span) TokenSpan(i, j int) Span {
	lo, hi := s.TokenBounds()
	if i < 0 || lo+j > hi || i >= j {
		panic(fmt.Sprintf("text: token span [%d,%d) outside token range of %v", i, j, s))
	}
	toks := s.doc.content().tokens
	return Span{doc: s.doc, start: toks[lo+i].Start, end: toks[lo+j-1].End}
}

// Shrink returns the span trimmed to whole tokens: it starts at the first
// token boundary >= Start and ends at the last token boundary <= End.
// If the span covers no whole token, ok is false.
func (s Span) Shrink() (Span, bool) {
	lo, hi := s.TokenBounds()
	if lo >= hi {
		return Span{}, false
	}
	toks := s.doc.content().tokens
	return Span{doc: s.doc, start: toks[lo].Start, end: toks[hi-1].End}, true
}

// SubSpans enumerates every token-aligned sub-span of s (all contiguous
// token sequences), calling fn for each. Enumeration stops early if fn
// returns false. The count of token-aligned sub-spans of a span with t
// tokens is t*(t+1)/2.
func (s Span) SubSpans(fn func(Span) bool) {
	lo, hi := s.TokenBounds()
	toks := s.doc.content().tokens
	for i := lo; i < hi; i++ {
		for j := i; j < hi; j++ {
			if !fn(Span{doc: s.doc, start: toks[i].Start, end: toks[j].End}) {
				return
			}
		}
	}
}

// NumSubSpans returns the number of token-aligned sub-spans of s.
func (s Span) NumSubSpans() int {
	n := s.NumTokens()
	return n * (n + 1) / 2
}

// Numeric parses the span text as a number, tolerating a leading currency
// symbol and thousands separators ("$1,234.50" -> 1234.5). ok is false when
// the (trimmed) text is not a single numeric token.
func (s Span) Numeric() (float64, bool) {
	return ParseNumeric(s.Text())
}

// ParseNumeric parses a string as a tolerant number: optional leading '$',
// optional sign, digits with ',' thousands separators and at most one '.'.
func ParseNumeric(raw string) (float64, bool) {
	t := strings.TrimSpace(raw)
	t = strings.TrimPrefix(t, "$")
	if t == "" {
		return 0, false
	}
	t = strings.ReplaceAll(t, ",", "")
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// CompareSpans orders spans by document id, then start, then end.
// It returns -1, 0, or +1.
func CompareSpans(a, b Span) int {
	switch {
	case a.doc == b.doc:
		// fall through to offsets
	case a.doc == nil:
		return -1
	case b.doc == nil:
		return 1
	case a.doc.id != b.doc.id:
		if a.doc.id < b.doc.id {
			return -1
		}
		return 1
	}
	if a.start != b.start {
		if a.start < b.start {
			return -1
		}
		return 1
	}
	if a.end != b.end {
		if a.end < b.end {
			return -1
		}
		return 1
	}
	return 0
}
