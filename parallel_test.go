// Determinism of parallel evaluation: a session run with a worker pool
// must be byte-identical to a serial run — same transcript, same picked
// questions, same final table. This is the guarantee DESIGN.md's
// concurrency model section makes and the parallel speedup relies on.
package iflex_test

import (
	"testing"

	"iflex"
	"iflex/internal/corpus"
	"iflex/internal/experiments"
)

// runT9 executes the Table 5 simulation scenario for T9 with the given
// worker count and returns the session result.
func runT9(t *testing.T, workers int) *iflex.SessionResult {
	t.Helper()
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(30, 1)
	env := task.Env(c)
	prog, err := iflex.ParseProgram(task.Program)
	if err != nil {
		t.Fatal(err)
	}
	session := iflex.NewSession(env, prog, task.Oracle(), iflex.SessionConfig{
		Strategy:   iflex.SimulationStrategy,
		SubsetSeed: 1,
		Workers:    workers,
	})
	res, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParallelSessionDeterminism(t *testing.T) {
	serial := runT9(t, 1)
	par := runT9(t, 8)
	if st, pt := serial.Transcript(), par.Transcript(); st != pt {
		t.Errorf("transcripts diverge:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", st, pt)
	}
	if sf, pf := serial.Final.String(), par.Final.String(); sf != pf {
		t.Errorf("final tables diverge:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", sf, pf)
	}
}

// TestParallelStatsDeterminism extends the byte-identity guarantee to the
// engine counters: every deterministic stats total and every per-iteration
// evals/cache-hits delta must match between Workers=1 and Workers=8. Only
// the pool counters and the per-operator wall times may differ.
func TestParallelStatsDeterminism(t *testing.T) {
	serial := runT9(t, 1)
	par := runT9(t, 8)
	det := func(r *iflex.SessionResult) [8]int64 {
		s := r.Stats
		return [8]int64{s.NodesEvaluated, s.CacheHits, s.TuplesBuilt, s.ProcCalls,
			s.FuncCalls, s.VerifyCalls, s.RefineCalls, s.LimitFallbacks}
	}
	if det(serial) != det(par) {
		t.Errorf("deterministic stats diverge:\n--- workers=1 ---\n%+v\n--- workers=8 ---\n%+v",
			det(serial), det(par))
	}
	if len(serial.Iterations) != len(par.Iterations) {
		t.Fatalf("iteration counts diverge: %d vs %d", len(serial.Iterations), len(par.Iterations))
	}
	for i, s := range serial.Iterations {
		p := par.Iterations[i]
		if s.Evals != p.Evals || s.CacheHits != p.CacheHits {
			t.Errorf("iteration %d counters diverge: workers=1 evals=%d hits=%d, workers=8 evals=%d hits=%d",
				s.N, s.Evals, s.CacheHits, p.Evals, p.CacheHits)
		}
	}
	if serial.Stats.NodesEvaluated == 0 || serial.Stats.CacheHits == 0 {
		t.Error("session recorded no evaluations or no cache hits; counters look dead")
	}
}

// TestParallelCompareHarness exercises the iflex-bench "parallel" table:
// it must report Identical=true and a positive speedup value.
func TestParallelCompareHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness: runs the scenario twice; skipped in -short")
	}
	res, err := experiments.ParallelCompare(
		experiments.Options{Seed: 1, Strategy: "sim", Workers: 4}, "T9", 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("parallel run diverged from serial")
	}
	if res.Speedup <= 0 {
		t.Errorf("speedup = %v, want > 0", res.Speedup)
	}
}
