// Determinism of parallel evaluation: a session run with a worker pool
// must be byte-identical to a serial run — same transcript, same picked
// questions, same final table. This is the guarantee DESIGN.md's
// concurrency model section makes and the parallel speedup relies on.
package iflex_test

import (
	"testing"

	"iflex"
	"iflex/internal/corpus"
	"iflex/internal/experiments"
)

// runT9 executes the Table 5 simulation scenario for T9 with the given
// worker count and returns the transcript and rendered final table.
func runT9(t *testing.T, workers int) (transcript, final string) {
	t.Helper()
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(30, 1)
	env := task.Env(c)
	prog, err := iflex.ParseProgram(task.Program)
	if err != nil {
		t.Fatal(err)
	}
	session := iflex.NewSession(env, prog, task.Oracle(), iflex.SessionConfig{
		Strategy:   iflex.SimulationStrategy,
		SubsetSeed: 1,
		Workers:    workers,
	})
	res, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Transcript(), res.Final.String()
}

func TestParallelSessionDeterminism(t *testing.T) {
	serialTranscript, serialFinal := runT9(t, 1)
	parTranscript, parFinal := runT9(t, 8)
	if serialTranscript != parTranscript {
		t.Errorf("transcripts diverge:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serialTranscript, parTranscript)
	}
	if serialFinal != parFinal {
		t.Errorf("final tables diverge:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serialFinal, parFinal)
	}
}

// TestParallelCompareHarness exercises the iflex-bench "parallel" table:
// it must report Identical=true and a positive speedup value.
func TestParallelCompareHarness(t *testing.T) {
	res, err := experiments.ParallelCompare(
		experiments.Options{Seed: 1, Strategy: "sim", Workers: 4}, "T9", 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("parallel run diverged from serial")
	}
	if res.Speedup <= 0 {
		t.Errorf("speedup = %v, want > 0", res.Speedup)
	}
}
